//! Execution traces: per-rank virtual-time event records and a text
//! timeline renderer.
//!
//! A [`Trace`] collects `(rank, start, end, kind)` spans emitted by
//! simulated code; [`Trace::render`] draws them as an ASCII Gantt chart —
//! the quickest way to *see* a load imbalance, a master bottleneck, or a
//! serialisation bug in a protocol. Collection is explicit (the engine
//! code records what it considers interesting) and cheap enough to leave on.

use parking_lot::Mutex;
use std::sync::Arc;

/// What a span represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Modelled computation.
    Compute,
    /// Blocked waiting for a message or window synchronisation.
    Wait,
    /// Communication CPU (send/receive/RMA overheads).
    Comm,
    /// Fault-recovery activity: request timeouts, retries, failover
    /// re-dispatches, degraded-result bookkeeping.
    Recovery,
}

impl SpanKind {
    fn glyph(self) -> char {
        match self {
            SpanKind::Compute => '#',
            SpanKind::Wait => '.',
            SpanKind::Comm => '~',
            SpanKind::Recovery => '!',
        }
    }
}

/// One recorded interval on one rank's virtual timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Global rank the span belongs to.
    pub rank: usize,
    /// Virtual start (ns).
    pub start: f64,
    /// Virtual end (ns).
    pub end: f64,
    /// Category.
    pub kind: SpanKind,
    /// Short label (shown in span listings).
    pub label: &'static str,
}

/// A shared, thread-safe span collector.
#[derive(Clone, Default)]
pub struct Trace {
    spans: Arc<Mutex<Vec<Span>>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one span.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn record(&self, rank: usize, start: f64, end: f64, kind: SpanKind, label: &'static str) {
        assert!(end >= start, "span ends before it starts: {start}..{end}");
        self.spans.lock().push(Span {
            rank,
            start,
            end,
            kind,
            label,
        });
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Copies out the spans, sorted by (rank, start).
    pub fn spans(&self) -> Vec<Span> {
        let mut v = self.spans.lock().clone();
        v.sort_by(|a, b| a.rank.cmp(&b.rank).then(a.start.total_cmp(&b.start)));
        v
    }

    /// Latest span end (the trace's makespan), 0 when empty.
    pub fn end_ns(&self) -> f64 {
        self.spans.lock().iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total span time per rank and kind: `(compute, wait, comm)`.
    /// Recovery spans are excluded — use [`Trace::kind_total`] for them.
    pub fn totals(&self, rank: usize) -> (f64, f64, f64) {
        (
            self.kind_total(rank, SpanKind::Compute),
            self.kind_total(rank, SpanKind::Wait),
            self.kind_total(rank, SpanKind::Comm),
        )
    }

    /// Total span time of one kind on one rank.
    pub fn kind_total(&self, rank: usize, kind: SpanKind) -> f64 {
        self.spans
            .lock()
            .iter()
            .filter(|s| s.rank == rank && s.kind == kind)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Renders an ASCII Gantt chart: one row per rank, `width` columns over
    /// `[0, end_ns]`. `#` compute, `~` comm CPU, `.` waiting, `!` fault
    /// recovery, space idle. Later-recorded spans overwrite earlier ones in
    /// a cell.
    pub fn render(&self, n_ranks: usize, width: usize) -> String {
        assert!(width >= 10, "need at least 10 columns");
        let end = self.end_ns().max(1.0);
        let mut rows = vec![vec![' '; width]; n_ranks];
        for s in self.spans.lock().iter() {
            if s.rank >= n_ranks {
                continue;
            }
            let a = ((s.start / end) * width as f64).floor() as usize;
            let b = (((s.end / end) * width as f64).ceil() as usize).min(width);
            for cell in &mut rows[s.rank][a.min(width - 1)..b.max(a + 1).min(width)] {
                *cell = s.kind.glyph();
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "virtual timeline 0 .. {:.2} ms   (# compute, ~ comm, . wait, ! recovery)\n",
            end / 1e6
        ));
        for (r, row) in rows.iter().enumerate() {
            out.push_str(&format!("rank {r:>3} |"));
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let t = Trace::new();
        t.record(1, 10.0, 20.0, SpanKind::Compute, "b");
        t.record(0, 5.0, 9.0, SpanKind::Wait, "a");
        t.record(1, 0.0, 5.0, SpanKind::Comm, "c");
        assert_eq!(t.len(), 3);
        let spans = t.spans();
        assert_eq!(spans[0].rank, 0);
        assert_eq!(spans[1].rank, 1);
        assert_eq!(spans[1].start, 0.0);
        assert_eq!(t.end_ns(), 20.0);
    }

    #[test]
    fn totals_by_kind() {
        let t = Trace::new();
        t.record(0, 0.0, 10.0, SpanKind::Compute, "x");
        t.record(0, 10.0, 14.0, SpanKind::Wait, "y");
        t.record(0, 14.0, 15.0, SpanKind::Comm, "z");
        t.record(1, 0.0, 2.0, SpanKind::Compute, "w");
        let (c, w, m) = t.totals(0);
        assert_eq!((c, w, m), (10.0, 4.0, 1.0));
        assert_eq!(t.totals(1), (2.0, 0.0, 0.0));
        assert_eq!(t.totals(9), (0.0, 0.0, 0.0));
    }

    #[test]
    fn render_shows_glyphs() {
        let t = Trace::new();
        t.record(0, 0.0, 50.0, SpanKind::Compute, "work");
        t.record(1, 50.0, 100.0, SpanKind::Wait, "wait");
        let out = t.render(2, 20);
        assert!(out.contains('#'));
        assert!(out.contains('.'));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // rank 0 busy early, rank 1 waiting late
        assert!(lines[1].starts_with("rank   0 |#"));
        assert!(lines[2].trim_end().ends_with(".|"));
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::new();
        let out = t.render(1, 12);
        assert!(out.contains("rank   0"));
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn inverted_span_panics() {
        Trace::new().record(0, 5.0, 1.0, SpanKind::Compute, "bad");
    }

    #[test]
    fn shared_across_threads() {
        let t = Trace::new();
        std::thread::scope(|s| {
            for r in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..10 {
                        t.record(r, i as f64, i as f64 + 1.0, SpanKind::Compute, "par");
                    }
                });
            }
        });
        assert_eq!(t.len(), 40);
    }
}
