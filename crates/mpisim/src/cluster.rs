//! Cluster construction and rank-thread orchestration.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::net::{NetModel, Topology};
use crate::rank::{Mailbox, Rank};

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of simulated MPI ranks (each is an OS thread).
    pub n_ranks: usize,
    /// Rank → compute-node mapping (drives intra- vs inter-node costs).
    pub topology: Topology,
    /// α–β network model.
    pub net: NetModel,
    /// Compute cost model for [`Rank::charge_dists`].
    pub cost: CostModel,
    /// Stack size per rank thread. Simulated programs keep their data in
    /// shared structures, so a modest stack suffices even for thousands of
    /// ranks.
    pub stack_bytes: usize,
    /// Watchdog: a blocking receive that waits longer than this (real time)
    /// panics, turning simulated deadlocks into test failures.
    pub recv_timeout: Duration,
    /// Seeded fault-injection schedule ([`FaultPlan::none`] by default —
    /// a vacuous plan adds one boolean check to the send path and nothing
    /// else).
    pub fault: FaultPlan,
}

impl SimConfig {
    /// Default configuration for `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "cluster needs at least one rank");
        Self {
            n_ranks,
            topology: Topology::default(),
            net: NetModel::default(),
            cost: CostModel::default(),
            stack_bytes: 1 << 20,
            recv_timeout: Duration::from_secs(120),
            fault: FaultPlan::none(),
        }
    }

    /// Sets the topology (builder style).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the network model (builder style).
    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Sets the compute cost model (builder style).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the fault-injection plan (builder style).
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// State shared by all rank threads of one cluster run.
pub(crate) struct Shared {
    pub(crate) cfg: SimConfig,
    pub(crate) mailboxes: Vec<Mailbox>,
    registry: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    next_key: AtomicU64,
}

impl Shared {
    pub(crate) fn registry_put(&self, value: Box<dyn Any + Send + Sync>) -> u64 {
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        self.registry.lock().insert(key, Arc::from(value));
        key
    }

    pub(crate) fn registry_get(&self, key: u64) -> Arc<dyn Any + Send + Sync> {
        self.registry
            .lock()
            .get(&key)
            .cloned()
            .unwrap_or_else(|| panic!("registry key {key} not found"))
    }
}

/// A simulated cluster: spawns one OS thread per rank and runs an SPMD
/// closure on each.
pub struct Cluster {
    cfg: SimConfig,
}

impl Cluster {
    /// Creates a cluster with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this cluster runs with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `f` on every rank and returns the per-rank results in rank
    /// order. Panics in any rank are propagated (with the rank id) after
    /// all threads have been joined or abandoned.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        let n = self.cfg.n_ranks;
        let shared = Arc::new(Shared {
            cfg: self.cfg.clone(),
            mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
            registry: Mutex::new(HashMap::new()),
            next_key: AtomicU64::new(1),
        });

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);

        std::thread::scope(|scope| {
            let f = &f;
            let mut handles = Vec::with_capacity(n);
            for (r, slot) in results.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let builder = std::thread::Builder::new()
                    .name(format!("simrank-{r}"))
                    .stack_size(self.cfg.stack_bytes);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let mut rank = Rank::new(r, shared);
                        *slot = Some(f(&mut rank));
                    })
                    .expect("failed to spawn rank thread");
                handles.push((r, handle));
            }
            let mut first_panic: Option<(usize, Box<dyn Any + Send>)> = None;
            for (r, h) in handles {
                if let Err(p) = h.join() {
                    first_panic.get_or_insert((r, p));
                }
            }
            if let Some((r, p)) = first_panic {
                eprintln!("simulated rank {r} panicked");
                std::panic::resume_unwind(p);
            }
        });

        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = Cluster::new(SimConfig::new(8)).run(|rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn many_ranks_spawn_fine() {
        let out = Cluster::new(SimConfig::new(512)).run(|rank| rank.rank());
        assert_eq!(out.len(), 512);
        assert_eq!(out[511], 511);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        Cluster::new(SimConfig::new(4)).run(|rank| {
            if rank.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn clocks_start_at_zero() {
        let out = Cluster::new(SimConfig::new(3)).run(|rank| rank.now());
        assert!(out.iter().all(|&t| t == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = SimConfig::new(0);
    }
}
