//! One function per table/figure of the paper.
//!
//! Each experiment returns structured rows (so tests can assert on shapes)
//! and has a `render_*` companion producing the printable table. The
//! `repro` binary glues them to a CLI.

use fastann_core::{
    search_batch_multi_owner, DistIndex, Distribution, EngineConfig, RoutingPolicy, SearchOptions,
    SearchRequest,
};
use fastann_data::{ground_truth, Distance};
use fastann_hnsw::HnswConfig;
use fastann_kdtree::dist as kd;
use fastann_vptree::RouteConfig;

use crate::datasets::{self, Workload};
use crate::fmt;
use crate::Scale;

/// k used throughout the evaluation (paper Section V: k = 10, L2).
pub const K: usize = 10;

/// HNSW beam width for local searches in the experiments.
const EF: usize = 64;

/// Threads (cores) per compute node; the paper's nodes have 24, we use 8 so
/// small core counts still form multiple nodes.
fn pick_t(cores: usize) -> usize {
    8usize.min(cores)
}

/// Experiment engine configuration for a workload at a core count.
fn engine_cfg(cores: usize, seed: u64) -> EngineConfig {
    // F(q)'s partition budget grows with the core count: partitions shrink
    // as P grows, so a fixed budget would silently cut the searched volume
    // (and recall) at scale.
    let cap = (cores / 16).max(4);
    EngineConfig::new(cores, pick_t(cores))
        .with_hnsw(HnswConfig::with_m(16).ef_construction(60).seed(seed))
        .with_route(RouteConfig {
            margin_frac: 0.2,
            max_partitions: cap,
        })
        .with_seed(seed)
}

fn search_opts() -> SearchOptions {
    SearchOptions::new(K).with_ef(EF)
}

/// Exposed for the `repro debug` subcommand.
pub fn debug_cfg(cores: usize) -> EngineConfig {
    engine_cfg(cores, 0xdb9)
}

/// Exposed for the `repro debug` subcommand.
pub fn debug_opts() -> SearchOptions {
    search_opts()
}

// ---------------------------------------------------------------------
// Table I — datasets
// ---------------------------------------------------------------------

/// Renders the dataset table: the paper's corpora and the scaled stand-ins
/// actually generated (see DESIGN.md for the substitution rationale).
pub fn table1(scale: Scale) -> String {
    let rows: Vec<(Workload, &str, &str, &str)> = vec![
        (datasets::sift(scale), "1 billion", "128", "10000"),
        (datasets::deep(scale), "1 billion", "96", "10000"),
        (datasets::gist(scale), "1 million", "960", "1000"),
        (datasets::syn_1m(scale), "1 million", "512", "10000"),
        (datasets::syn_10m(scale), "10 million", "256", "10000"),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(w, pn, pd, pq)| {
            vec![
                w.name.to_string(),
                pn.to_string(),
                pd.to_string(),
                pq.to_string(),
                format!("{}", w.data.len()),
                format!("{}", w.data.dim()),
                format!("{}", w.queries.len()),
            ]
        })
        .collect();
    fmt::table(
        &[
            "dataset",
            "paper points",
            "paper dim",
            "paper queries",
            "our points",
            "our dim",
            "our queries",
        ],
        &body,
    )
}

// ---------------------------------------------------------------------
// Figure 3 — strong scaling
// ---------------------------------------------------------------------

/// One measured point of a strong-scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Total processing cores.
    pub cores: usize,
    /// Virtual total query time (ns).
    pub total_ns: f64,
    /// Speedup relative to the smallest core count in the series.
    pub speedup: f64,
    /// Mean recall@k against exact ground truth.
    pub recall: f64,
}

/// A scaling curve for one dataset.
#[derive(Clone, Debug)]
pub struct ScalingSeries {
    /// Dataset name.
    pub dataset: &'static str,
    /// Measured points, ascending core count.
    pub points: Vec<ScalingPoint>,
}

fn run_scaling(w: &Workload, grid: &[usize], seed: u64) -> ScalingSeries {
    let gt = ground_truth::brute_force(&w.data, &w.queries, K, Distance::L2);
    let mut points = Vec::with_capacity(grid.len());
    let mut base = None;
    for &cores in grid {
        let index = DistIndex::build(&w.data, engine_cfg(cores, seed));
        let report = SearchRequest::new(&index, &w.queries)
            .opts(search_opts())
            .run();
        let recall = ground_truth::recall_at_k(&report.results, &gt, K).mean;
        let b = *base.get_or_insert(report.total_ns);
        points.push(ScalingPoint {
            cores,
            total_ns: report.total_ns,
            speedup: b / report.total_ns,
            recall,
        });
    }
    ScalingSeries {
        dataset: w.name,
        points,
    }
}

/// Figure 3(a): strong scaling on the synthetic MDCGen datasets.
pub fn fig3a(scale: Scale) -> Vec<ScalingSeries> {
    let m = scale.cores_mult();
    let grid: Vec<usize> = [4, 8, 16, 32].iter().map(|c| c * m).collect();
    vec![
        run_scaling(&datasets::syn_1m(scale), &grid, 0xa1),
        run_scaling(&datasets::syn_10m(scale), &grid, 0xa2),
    ]
}

/// Figure 3(b): strong scaling on the billion-point-style datasets.
pub fn fig3b(scale: Scale) -> Vec<ScalingSeries> {
    let m = scale.cores_mult();
    let grid: Vec<usize> = [8, 16, 32, 64].iter().map(|c| c * m).collect();
    vec![
        run_scaling(&datasets::sift(scale), &grid, 0xb1),
        run_scaling(&datasets::deep(scale), &grid, 0xb2),
    ]
}

/// Renders scaling series as a table.
pub fn render_scaling(title: &str, series: &[ScalingSeries]) -> String {
    let mut out = format!("## {title}\n\n");
    for s in series {
        out.push_str(&format!("### {}\n", s.dataset));
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|p| {
                vec![
                    p.cores.to_string(),
                    fmt::ns(p.total_ns),
                    format!("{:.2}x", p.speedup),
                    format!("{:.3}", p.recall),
                ]
            })
            .collect();
        out.push_str(&fmt::table(
            &["cores", "query time", "speedup", "recall@10"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Table II — construction times
// ---------------------------------------------------------------------

/// One construction measurement.
#[derive(Clone, Copy, Debug)]
pub struct BuildRow {
    /// Total processing cores.
    pub cores: usize,
    /// Total virtual construction time (ns).
    pub total_ns: f64,
    /// HNSW-construction share of it (ns).
    pub hnsw_ns: f64,
}

/// Table II: VP-tree + HNSW construction times on the SIFT stand-in.
pub fn table2(scale: Scale) -> Vec<BuildRow> {
    let w = datasets::sift(scale);
    let m = scale.cores_mult();
    [8, 16, 32, 64]
        .iter()
        .map(|c| {
            let cores = c * m;
            let index = DistIndex::build(&w.data, engine_cfg(cores, 0xc0));
            BuildRow {
                cores,
                total_ns: index.build_stats.total_ns,
                hnsw_ns: index.build_stats.hnsw_ns,
            }
        })
        .collect()
}

/// Renders Table II.
pub fn render_table2(rows: &[BuildRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.cores.to_string(), fmt::ns(r.total_ns), fmt::ns(r.hnsw_ns)])
        .collect();
    fmt::table(&["cores", "total construction", "HNSW construction"], &body)
}

// ---------------------------------------------------------------------
// Figure 4 — replication / load balancing
// ---------------------------------------------------------------------

/// One replication-factor measurement.
#[derive(Clone, Debug)]
pub struct ReplicationRow {
    /// Replication factor `r`.
    pub r: usize,
    /// Total virtual query time (ns).
    pub total_ns: f64,
    /// Improvement over r = 1, percent.
    pub improvement_pct: f64,
    /// Distribution of per-core query counts (Fig. 4(b)).
    pub dist: Distribution,
    /// Maximum bytes resident on any node at this replication factor.
    pub max_node_bytes: usize,
}

/// Figure 4: effect of the replication factor on a skewed query batch.
/// Returns the rows and the per-core count for optimal balance (the red
/// dotted line of Fig. 4(b)).
pub fn fig4(scale: Scale) -> (Vec<ReplicationRow>, f64) {
    let w = datasets::sift(scale);
    let queries = datasets::sift_skewed_queries(&w.data, 400, 0xd0);
    let cores = 32 * scale.cores_mult();
    // Two cores per node here: workgroups of r <= 5 then span node
    // boundaries, the regime where replication moves work between nodes
    // (at the paper's 8192-core scale even consecutive-core workgroups
    // cross nodes regularly).
    let cfg = EngineConfig::new(cores, 2)
        .with_hnsw(HnswConfig::with_m(16).ef_construction(60).seed(0xd1))
        .with_route(RouteConfig {
            margin_frac: 0.2,
            max_partitions: 4,
        })
        .with_seed(0xd1);
    let index = DistIndex::build(&w.data, cfg);
    let mut rows = Vec::new();
    let mut base = None;
    let mut optimal = 0.0;
    for r in 1..=5 {
        let report = SearchRequest::new(&index, &queries)
            .opts(search_opts().with_routing(RoutingPolicy::Static(r)))
            .run();
        let b = *base.get_or_insert(report.total_ns);
        let dispatched: u64 = report.per_core_queries.iter().sum();
        optimal = dispatched as f64 / cores as f64;
        rows.push(ReplicationRow {
            r,
            total_ns: report.total_ns,
            improvement_pct: (b - report.total_ns) / b * 100.0,
            dist: report.query_distribution(),
            max_node_bytes: index.node_memory_bytes(r).into_iter().max().unwrap_or(0),
        });
    }
    (rows, optimal)
}

/// Renders Figure 4 as two tables (times and distributions).
pub fn render_fig4(rows: &[ReplicationRow], optimal: f64) -> String {
    let times: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.r.to_string(),
                fmt::ns(r.total_ns),
                format!("{:+.1}%", r.improvement_pct),
                format!("{:.1} MiB", r.max_node_bytes as f64 / (1 << 20) as f64),
            ]
        })
        .collect();
    let dists: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.r.to_string(),
                r.dist.min.to_string(),
                r.dist.q1.to_string(),
                r.dist.median.to_string(),
                r.dist.q3.to_string(),
                r.dist.max.to_string(),
                format!("{:.2}", r.dist.imbalance()),
            ]
        })
        .collect();
    format!(
        "### (a) total query time vs replication factor\n{}\n### (b) queries per core (optimal balance = {:.1}/core)\n{}",
        fmt::table(&["r", "query time", "vs r=1", "max node memory"], &times),
        optimal,
        fmt::table(&["r", "min", "q1", "median", "q3", "max", "max/mean"], &dists),
    )
}

// ---------------------------------------------------------------------
// Table III — comparison with the KD-tree baseline
// ---------------------------------------------------------------------

/// One dataset's head-to-head row.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Total cores for both systems.
    pub cores: usize,
    /// Our total virtual query time (ns).
    pub ours_ns: f64,
    /// Distributed-KD total virtual query time (ns).
    pub kd_ns: f64,
    /// `kd_ns / ours_ns`.
    pub speedup: f64,
    /// Our mean recall@k (KD is exact by construction).
    pub recall: f64,
    /// Mean partitions visited per query by the KD baseline.
    pub kd_fanout: f64,
}

fn compare_one(w: &Workload, cores: usize, seed: u64) -> CompareRow {
    let gt = ground_truth::brute_force(&w.data, &w.queries, K, Distance::L2);
    let index = DistIndex::build(&w.data, engine_cfg(cores, seed));
    let ours = SearchRequest::new(&index, &w.queries)
        .opts(search_opts())
        .run();
    let recall = ground_truth::recall_at_k(&ours.results, &gt, K).mean;

    let kd_cfg = kd::DistKdConfig::new(cores);
    let kd_report = kd::run(&w.data, &w.queries, &kd_cfg);
    CompareRow {
        dataset: w.name,
        cores,
        ours_ns: ours.total_ns,
        kd_ns: kd_report.query_ns,
        speedup: kd_report.query_ns / ours.total_ns,
        recall,
        kd_fanout: kd_report.mean_fanout,
    }
}

/// Table III: our method vs the distributed KD tree.
pub fn table3(scale: Scale) -> Vec<CompareRow> {
    let m = scale.cores_mult();
    vec![
        compare_one(&datasets::sift(scale), 32 * m, 0xe1),
        compare_one(&datasets::deep(scale), 32 * m, 0xe2),
        compare_one(&datasets::gist(scale), 16 * m, 0xe3),
    ]
}

/// Renders Table III.
pub fn render_table3(rows: &[CompareRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} ({} cores)", r.dataset, r.cores),
                format!("{} ({:.1}X faster)", fmt::ns(r.ours_ns), r.speedup),
                fmt::ns(r.kd_ns),
                format!("{:.2}", r.recall),
                format!("{:.1}", r.kd_fanout),
            ]
        })
        .collect();
    fmt::table(
        &[
            "dataset",
            "our method",
            "KD-tree [PANDA]",
            "our recall",
            "KD fan-out",
        ],
        &body,
    )
}

// ---------------------------------------------------------------------
// Figure 5 — search time breakdown
// ---------------------------------------------------------------------

/// Compute/communication/idle shares at one core count.
#[derive(Clone, Copy, Debug)]
pub struct BreakdownRow {
    /// Total processing cores.
    pub cores: usize,
    /// Fraction of aggregate core-time spent computing.
    pub compute: f64,
    /// Fraction spent on communication CPU + waits.
    pub comm: f64,
    /// Idle fraction.
    pub idle: f64,
}

/// Figure 5: search-time breakdown on the SIFT stand-in across core counts.
pub fn fig5(scale: Scale) -> Vec<BreakdownRow> {
    let w = datasets::sift(scale);
    let m = scale.cores_mult();
    [8, 16, 32, 64]
        .iter()
        .map(|c| {
            let cores = c * m;
            let index = DistIndex::build(&w.data, engine_cfg(cores, 0xf0));
            let report = SearchRequest::new(&index, &w.queries)
                .opts(search_opts())
                .run();
            let (compute, comm, idle) = report.breakdown();
            BreakdownRow {
                cores,
                compute,
                comm,
                idle,
            }
        })
        .collect()
}

/// Renders Figure 5.
pub fn render_fig5(rows: &[BreakdownRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                format!("{:.1}%", r.compute * 100.0),
                format!("{:.1}%", r.comm * 100.0),
                format!("{:.1}%", r.idle * 100.0),
            ]
        })
        .collect();
    fmt::table(
        &["cores", "computation", "communication", "idle/other"],
        &body,
    )
}

// ---------------------------------------------------------------------
// Figure 6 — recall vs query time (M sweep)
// ---------------------------------------------------------------------

/// One M-sweep measurement.
#[derive(Clone, Copy, Debug)]
pub struct RecallRow {
    /// HNSW `M` parameter.
    pub m: usize,
    /// Total virtual query time (ns).
    pub total_ns: f64,
    /// Mean recall@k.
    pub recall: f64,
    /// Index memory (all partitions, bytes).
    pub index_bytes: usize,
}

/// Figure 6: recall vs total query time for M ∈ {8, 16, 32, 64}.
pub fn fig6(scale: Scale) -> Vec<RecallRow> {
    let w = datasets::sift(scale);
    let gt = ground_truth::brute_force(&w.data, &w.queries, K, Distance::L2);
    // Few cores -> large partitions, and a tight beam (ef = 16): recall is
    // then limited by the local graph quality, i.e. by M — the regime the
    // paper's Figure 6 sweeps (its partitions hold ~1M points each).
    let cores = 8 * scale.cores_mult();
    [8usize, 16, 32, 64]
        .iter()
        .map(|&m| {
            let cfg = EngineConfig::new(cores, pick_t(cores))
                .with_hnsw(HnswConfig::with_m(m).ef_construction(60).seed(0x6f))
                .with_route(RouteConfig {
                    margin_frac: 0.3,
                    max_partitions: 6,
                })
                .with_seed(0x6f);
            let index = DistIndex::build(&w.data, cfg);
            let report = SearchRequest::new(&index, &w.queries)
                .opts(search_opts().with_ef(16))
                .run();
            RecallRow {
                m,
                total_ns: report.total_ns,
                recall: ground_truth::recall_at_k(&report.results, &gt, K).mean,
                index_bytes: index.partitions.iter().map(|p| p.approx_bytes()).sum(),
            }
        })
        .collect()
}

/// Renders Figure 6.
pub fn render_fig6(rows: &[RecallRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.m.to_string(),
                fmt::ns(r.total_ns),
                format!("{:.3}", r.recall),
                format!("{:.1} MiB", r.index_bytes as f64 / (1 << 20) as f64),
            ]
        })
        .collect();
    fmt::table(&["M", "query time", "recall@10", "index memory"], &body)
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Master–worker vs multiple-owner at one core count.
#[derive(Clone, Copy, Debug)]
pub struct OwnerRow {
    /// Total processing cores.
    pub cores: usize,
    /// Master–worker total time (ns).
    pub master_worker_ns: f64,
    /// Multiple-owner total time (ns).
    pub multi_owner_ns: f64,
}

/// Ablation: the Section IV owner-strategy comparison. The paper compared
/// the multiple-owner variant against its *optimized* master–worker (i.e.
/// with replication-based load balancing) on real query sets, finding a
/// small multi-owner win at low core counts that "deteriorated as core
/// count increased" because the decentralised dispatch cannot replicate
/// partitions. We therefore run a skewed workload and give master–worker
/// its replication (r = 3).
pub fn ablation_owner(scale: Scale) -> Vec<OwnerRow> {
    let w = datasets::sift(scale);
    let queries = datasets::sift_skewed_queries(&w.data, 400, 0x0aa);
    let m = scale.cores_mult();
    [8, 32, 64]
        .iter()
        .map(|c| {
            let cores = c * m;
            // small nodes so replication can move work across nodes
            let cfg = EngineConfig::new(cores, 2.min(cores))
                .with_hnsw(HnswConfig::with_m(16).ef_construction(60).seed(0x0a))
                .with_route(RouteConfig {
                    margin_frac: 0.2,
                    max_partitions: 4,
                })
                .with_seed(0x0a);
            let index = DistIndex::build(&w.data, cfg);
            let mw = SearchRequest::new(&index, &queries)
                .opts(search_opts().with_routing(RoutingPolicy::Static(3.min(cores))))
                .run();
            let mo = search_batch_multi_owner(&index, &queries, &search_opts());
            OwnerRow {
                cores,
                master_worker_ns: mw.total_ns,
                multi_owner_ns: mo.total_ns,
            }
        })
        .collect()
}

/// Renders the owner ablation.
pub fn render_owner(rows: &[OwnerRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                fmt::ns(r.master_worker_ns),
                fmt::ns(r.multi_owner_ns),
                format!("{:.2}x", r.master_worker_ns / r.multi_owner_ns),
            ]
        })
        .collect();
    fmt::table(
        &[
            "cores",
            "master-worker",
            "multiple-owner",
            "owner/mw speedup",
        ],
        &body,
    )
}

/// One-sided vs two-sided result aggregation at one core count.
#[derive(Clone, Copy, Debug)]
pub struct OneSidedRow {
    /// Total processing cores.
    pub cores: usize,
    /// One-sided total time (ns).
    pub one_sided_ns: f64,
    /// Two-sided total time (ns).
    pub two_sided_ns: f64,
    /// Master receive/merge CPU, one-sided (ns).
    pub master_cpu_one: f64,
    /// Master receive/merge CPU, two-sided (ns).
    pub master_cpu_two: f64,
}

/// Ablation: the Section IV-C1 one-sided communication optimisation.
pub fn ablation_onesided(scale: Scale) -> Vec<OneSidedRow> {
    let w = datasets::sift(scale);
    let m = scale.cores_mult();
    [8, 32, 64]
        .iter()
        .map(|c| {
            let cores = c * m;
            let index = DistIndex::build(&w.data, engine_cfg(cores, 0x0b));
            let one = SearchRequest::new(&index, &w.queries)
                .opts(search_opts().with_one_sided(true))
                .run();
            let two = SearchRequest::new(&index, &w.queries)
                .opts(search_opts().with_one_sided(false))
                .run();
            OneSidedRow {
                cores,
                one_sided_ns: one.total_ns,
                two_sided_ns: two.total_ns,
                master_cpu_one: one.master_comm_cpu_ns,
                master_cpu_two: two.master_comm_cpu_ns,
            }
        })
        .collect()
}

/// The Section V-F comparison: an SQ8-compressed exhaustive index vs the
/// uncompressed distributed index at increasing effort — compression puts
/// a ceiling on recall; the paper's system reaches ~1.0 by raising M/ef.
#[derive(Clone, Copy, Debug)]
pub struct CompressionRow {
    /// System description.
    pub system: &'static str,
    /// Effort knob value (ef for HNSW; the SQ rows ignore it).
    pub effort: usize,
    /// Mean recall@k.
    pub recall: f64,
    /// Index bytes.
    pub bytes: usize,
}

/// Ablation: recall ceiling of a compressed index (paper Section V-F).
pub fn ablation_compression(scale: Scale) -> Vec<CompressionRow> {
    use fastann_data::quant::Sq8;
    // dense unit-norm data (DEEP-style) where quantization error matters
    let w = datasets::deep(scale);
    let gt = ground_truth::brute_force(&w.data, &w.queries, K, Distance::L2);
    let mut rows = Vec::new();

    let sq = Sq8::encode(&w.data);
    let approx: Vec<_> = (0..w.queries.len())
        .map(|i| sq.knn(w.queries.get(i), K, Distance::L2))
        .collect();
    let sq_recall = ground_truth::recall_at_k(&approx, &gt, K).mean;
    rows.push(CompressionRow {
        system: "SQ8 exhaustive (compressed)",
        effort: 0,
        recall: sq_recall,
        bytes: sq.code_bytes(),
    });

    let cores = 16 * scale.cores_mult();
    let cfg = engine_cfg(cores, 0x59f).with_route(RouteConfig {
        margin_frac: 0.35,
        max_partitions: 8,
    });
    let index = DistIndex::build(&w.data, cfg);
    let idx_bytes: usize = index.partitions.iter().map(|p| p.approx_bytes()).sum();
    for ef in [16usize, 64, 256] {
        let report = SearchRequest::new(&index, &w.queries)
            .opts(search_opts().with_ef(ef))
            .run();
        rows.push(CompressionRow {
            system: "ours (uncompressed)",
            effort: ef,
            recall: ground_truth::recall_at_k(&report.results, &gt, K).mean,
            bytes: idx_bytes,
        });
    }
    rows
}

/// Renders the compression ablation.
pub fn render_compression(rows: &[CompressionRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                if r.effort == 0 {
                    "-".into()
                } else {
                    format!("ef={}", r.effort)
                },
                format!("{:.3}", r.recall),
                format!("{:.1} MiB", r.bytes as f64 / (1 << 20) as f64),
            ]
        })
        .collect();
    fmt::table(&["system", "effort", "recall@10", "index size"], &body)
}

/// VP-tree partitioning vs flat-pivot partitioning at one core count —
/// the comparison against the paper's reference [16] (Zhou et al.), which
/// the paper reports an 8X improvement over.
#[derive(Clone, Copy, Debug)]
pub struct PivotRow {
    /// Partitioning scheme name.
    pub scheme: &'static str,
    /// Total virtual query time (ns).
    pub total_ns: f64,
    /// Mean recall@k.
    pub recall: f64,
    /// Master routing compute (ns) — flat schemes pay O(P) per query.
    pub route_ns: f64,
    /// Partition-size imbalance (max/mean).
    pub size_imbalance: f64,
}

/// Baseline: hierarchical VP-tree partitioning vs flat randomized pivots.
pub fn baseline_pivot(scale: Scale) -> Vec<PivotRow> {
    let w = datasets::sift(scale);
    let gt = ground_truth::brute_force(&w.data, &w.queries, K, Distance::L2);
    let cores = 32 * scale.cores_mult();
    let mut rows = Vec::new();
    for (scheme, flat) in [("vp-tree (ours)", false), ("flat pivots [16]", true)] {
        let cfg = engine_cfg(cores, 0x9f01);
        let index = if flat {
            DistIndex::build_flat_pivot(&w.data, cfg)
        } else {
            DistIndex::build(&w.data, cfg)
        };
        let report = SearchRequest::new(&index, &w.queries)
            .opts(search_opts())
            .run();
        let sizes = &index.build_stats.partition_sizes;
        let max = *sizes.iter().max().unwrap_or(&1) as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
        rows.push(PivotRow {
            scheme,
            total_ns: report.total_ns,
            recall: ground_truth::recall_at_k(&report.results, &gt, K).mean,
            route_ns: report.master_route_ns,
            size_imbalance: max / mean,
        });
    }
    rows
}

/// Renders the pivot baseline.
pub fn render_pivot(rows: &[PivotRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                fmt::ns(r.total_ns),
                format!("{:.3}", r.recall),
                fmt::ns(r.route_ns),
                format!("{:.2}", r.size_imbalance),
            ]
        })
        .collect();
    fmt::table(
        &[
            "partitioning",
            "query time",
            "recall@10",
            "master routing",
            "size max/mean",
        ],
        &body,
    )
}

/// HNSW vs exact local indexes at one core count (Section VI's
/// extensibility claim, and the motivation for using HNSW locally).
#[derive(Clone, Copy, Debug)]
pub struct LocalKindRow {
    /// Local index kind name.
    pub kind: &'static str,
    /// Total virtual query time (ns).
    pub total_ns: f64,
    /// Mean recall@k.
    pub recall: f64,
    /// Total distance evaluations across workers.
    pub ndist: u64,
}

/// Ablation: swap the per-partition index (HNSW vs exact VP tree vs brute
/// force) with identical partitioning and routing.
pub fn ablation_local(scale: Scale) -> Vec<LocalKindRow> {
    use fastann_core::LocalIndexKind;
    let w = datasets::sift(scale);
    let gt = ground_truth::brute_force(&w.data, &w.queries, K, Distance::L2);
    let cores = 32 * scale.cores_mult();
    [
        ("hnsw", LocalIndexKind::Hnsw),
        ("vp-exact", LocalIndexKind::VpExact),
        ("brute", LocalIndexKind::BruteForce),
    ]
    .iter()
    .map(|&(name, kind)| {
        let cfg = engine_cfg(cores, 0x10c).with_local_index(kind);
        let index = DistIndex::build(&w.data, cfg);
        let report = SearchRequest::new(&index, &w.queries)
            .opts(search_opts())
            .run();
        LocalKindRow {
            kind: name,
            total_ns: report.total_ns,
            recall: ground_truth::recall_at_k(&report.results, &gt, K).mean,
            ndist: report.total_ndist,
        }
    })
    .collect()
}

/// Renders the local-index ablation.
pub fn render_local(rows: &[LocalKindRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                fmt::ns(r.total_ns),
                format!("{:.3}", r.recall),
                r.ndist.to_string(),
            ]
        })
        .collect();
    fmt::table(
        &["local index", "query time", "recall@10", "distance evals"],
        &body,
    )
}

/// Renders the one-sided ablation.
pub fn render_onesided(rows: &[OneSidedRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                fmt::ns(r.one_sided_ns),
                fmt::ns(r.two_sided_ns),
                fmt::ns(r.master_cpu_one),
                fmt::ns(r.master_cpu_two),
            ]
        })
        .collect();
    fmt::table(
        &[
            "cores",
            "one-sided total",
            "two-sided total",
            "master comm CPU (1s)",
            "master comm CPU (2s)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    // Shape smoke-tests on miniature workloads; the real runs happen in the
    // `repro` binary. These use the quick-scale datasets directly but with
    // the smallest grids to keep debug-mode CI time sane.
    use super::*;

    #[test]
    fn scaling_runner_produces_monotone_cores() {
        let w = Workload {
            name: "tiny",
            data: fastann_data::synth::sift_like(2000, 16, 1),
            queries: fastann_data::synth::queries_near(
                &fastann_data::synth::sift_like(2000, 16, 1),
                20,
                0.02,
                2,
            ),
            min_exact_recall: 0.0,
        };
        let s = run_scaling(&w, &[4, 8], 9);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].speedup, 1.0);
        assert!(s.points[1].cores > s.points[0].cores);
        assert!(s.points.iter().all(|p| p.recall > 0.3));
    }

    #[test]
    fn renderers_do_not_panic() {
        let rows = vec![BuildRow {
            cores: 8,
            total_ns: 1e9,
            hnsw_ns: 5e8,
        }];
        assert!(render_table2(&rows).contains("8"));
        let rows = vec![BreakdownRow {
            cores: 8,
            compute: 0.7,
            comm: 0.1,
            idle: 0.2,
        }];
        assert!(render_fig5(&rows).contains("70.0%"));
        let rows = vec![RecallRow {
            m: 16,
            total_ns: 1e6,
            recall: 0.9,
            index_bytes: 1 << 20,
        }];
        assert!(render_fig6(&rows).contains("0.900"));
    }

    #[test]
    fn table1_lists_all_datasets() {
        let t = table1(Scale::Quick);
        for name in ["ANN_SIFT1B", "DEEP1B", "ANN_GIST1M", "SYN_1M", "SYN_10M"] {
            assert!(t.contains(name), "missing {name}");
        }
    }
}
