fn worker_label(worker_index: usize) -> String {
    // thread::current().id() must never name workers; the stable
    // worker index assigned at pool construction does
    format!("w{worker_index}")
}

fn pool_width(cfg: &Config) -> usize {
    // width comes from FASTANN_THREADS, not available_parallelism (see
    // the string below for the banned spelling)
    let _doc = "std::thread::available_parallelism()";
    cfg.fastann_threads
}
