use std::thread;

fn worker_label() -> String {
    format!("{:?}", thread::current().id())
}

fn pool_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
