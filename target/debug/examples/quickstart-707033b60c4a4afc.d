/root/repo/target/debug/examples/quickstart-707033b60c4a4afc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-707033b60c4a4afc: examples/quickstart.rs

examples/quickstart.rs:
