//! Token-stream analysis engine: the shared context every rule runs on.
//!
//! [`FileCtx`] wraps one lexed file with the structure the rules need:
//! a *code view* (comments filtered out, indexable without worrying
//! about interleaved docs), `#[cfg(test)] mod` scope tracking so test
//! code stays out of scope, delimiter matching, and the line set
//! sanctioned by `det:sort` / `det:fold` annotations for the
//! determinism rule family.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::lint::Violation;

/// Per-file context shared by all rules.
pub struct FileCtx<'a> {
    /// Path relative to the workspace root, forward slashes.
    pub rel: &'a str,
    /// The full token stream, comments included.
    pub toks: &'a [Tok],
    /// Registered `(name, value)` wire tags.
    pub tag_table: &'a [(String, u64)],
    /// Indices into `toks` of non-comment tokens (the code view).
    code: Vec<usize>,
    /// Per code-index: is this token inside a `#[cfg(test)] mod`?
    in_test: Vec<bool>,
    /// Lines carrying a `det:sort` / `det:fold` annotation comment.
    det_ok: BTreeSet<usize>,
    /// Trimmed source lines for violation snippets (1-based access).
    lines: Vec<&'a str>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context for one file from its lexed token stream.
    pub fn new(
        rel: &'a str,
        src: &'a str,
        toks: &'a [Tok],
        tag_table: &'a [(String, u64)],
    ) -> Self {
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let mut det_ok = BTreeSet::new();
        for t in toks {
            if t.kind == TokKind::LineComment
                && (t.text.contains("det:sort") || t.text.contains("det:fold"))
            {
                det_ok.insert(t.line);
            }
        }
        let mut ctx = FileCtx {
            rel,
            toks,
            tag_table,
            in_test: vec![false; code.len()],
            code,
            det_ok,
            lines: src.lines().collect(),
        };
        ctx.mark_test_scopes();
        ctx
    }

    /// Number of code (non-comment) tokens.
    pub fn n(&self) -> usize {
        self.code.len()
    }

    /// Code token at code-index `ci`, if in range.
    pub fn t(&self, ci: usize) -> Option<&Tok> {
        self.code.get(ci).map(|&i| &self.toks[i])
    }

    /// Identifier text at `ci`, if that token is an identifier.
    pub fn ident(&self, ci: usize) -> Option<&str> {
        match self.t(ci) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// `true` when the token at `ci` is the identifier `name`.
    pub fn is_ident(&self, ci: usize, name: &str) -> bool {
        self.ident(ci) == Some(name)
    }

    /// `true` when the token at `ci` is the punct `p`.
    pub fn is_punct(&self, ci: usize, p: &str) -> bool {
        matches!(self.t(ci), Some(t) if t.kind == TokKind::Punct && t.text == p)
    }

    /// Line of the code token at `ci` (the file's last line if out of
    /// range, so rules can flag truncated patterns safely).
    pub fn line(&self, ci: usize) -> usize {
        self.t(ci)
            .map_or_else(|| self.lines.len().max(1), |t| t.line)
    }

    /// `true` when the code token at `ci` is inside `#[cfg(test)] mod`.
    pub fn in_test(&self, ci: usize) -> bool {
        self.in_test.get(ci).copied().unwrap_or(false)
    }

    /// `true` when `line` (or the line above it) carries a `det:sort` /
    /// `det:fold` order-insensitivity annotation.
    pub fn det_annotated(&self, line: usize) -> bool {
        self.det_ok.contains(&line) || (line > 1 && self.det_ok.contains(&(line - 1)))
    }

    /// Trimmed source text of 1-based `line` (empty if out of range).
    pub fn snippet(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.trim())
    }

    /// Pushes a violation anchored at the line of code token `ci`.
    pub fn flag(&self, out: &mut Vec<Violation>, ci: usize, rule: &'static str) {
        let line = self.line(ci);
        out.push(Violation {
            file: self.rel.to_string(),
            line,
            rule,
            text: self.snippet(line).to_string(),
        });
    }

    /// Pushes a violation with an explicit description instead of the
    /// source snippet.
    pub fn flag_msg(&self, out: &mut Vec<Violation>, ci: usize, rule: &'static str, msg: String) {
        out.push(Violation {
            file: self.rel.to_string(),
            line: self.line(ci),
            rule,
            text: msg,
        });
    }

    /// Code-index of the delimiter matching the opener at `open_ci`
    /// (`(`/`)`, `[`/`]` or `{`/`}` depending on the opener's text).
    /// Returns `n()` when unbalanced, which ends every scan safely.
    pub fn match_delim(&self, open_ci: usize) -> usize {
        let (open, close) = match self.t(open_ci).map(|t| t.text.as_str()) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => return self.n(),
        };
        let mut depth = 0i64;
        for ci in open_ci..self.n() {
            if self.is_punct(ci, open) {
                depth += 1;
            } else if self.is_punct(ci, close) {
                depth -= 1;
                if depth == 0 {
                    return ci;
                }
            }
        }
        self.n()
    }

    /// Splits the argument span `(lo, hi)` (exclusive of both
    /// delimiters) at top-level commas; returns code-index ranges.
    pub fn split_args(&self, lo: usize, hi: usize) -> Vec<(usize, usize)> {
        let mut ranges = Vec::new();
        let mut depth = 0i64;
        let mut start = lo;
        for ci in lo..hi {
            match self.t(ci).map(|t| t.text.as_str()) {
                Some("(") | Some("[") | Some("{") => depth += 1,
                Some(")") | Some("]") | Some("}") => depth -= 1,
                Some(",") if depth == 0 => {
                    ranges.push((start, ci));
                    start = ci + 1;
                }
                _ => {}
            }
        }
        if start < hi {
            ranges.push((start, hi));
        }
        ranges
    }

    /// Walks backwards from code-index `ci` over attribute groups and
    /// doc comments; calls `on_attr` with the code-index range of each
    /// attribute's bracket interior. Returns `true` when a `///` or
    /// `/** */` doc comment was crossed.
    pub fn walk_back_attrs(&self, ci: usize, mut on_attr: impl FnMut(usize, usize)) -> bool {
        let mut documented = false;
        // work on the FULL stream so doc comments are visible
        let mut fi = match self.code.get(ci) {
            Some(&i) => i,
            None => return false,
        };
        loop {
            if fi == 0 {
                return documented;
            }
            fi -= 1;
            let t = &self.toks[fi];
            match t.kind {
                TokKind::LineComment => {
                    if t.text.starts_with("///") {
                        documented = true;
                    } else if t.text.starts_with("//!") {
                        return documented; // inner docs belong to the module
                    }
                    // plain comments between docs/attrs and the item are
                    // transparent
                }
                TokKind::BlockComment => {
                    if t.text.starts_with("/**") {
                        documented = true;
                    }
                }
                TokKind::Punct if t.text == "]" => {
                    // scan back to the matching '[' then require '#'
                    let close_ci = self.code.binary_search(&fi).unwrap_or(self.n());
                    let mut depth = 0i64;
                    let mut open_ci = None;
                    for cj in (0..=close_ci).rev() {
                        if self.is_punct(cj, "]") {
                            depth += 1;
                        } else if self.is_punct(cj, "[") {
                            depth -= 1;
                            if depth == 0 {
                                open_ci = Some(cj);
                                break;
                            }
                        }
                    }
                    let Some(open_ci) = open_ci else {
                        return documented;
                    };
                    let mut head = open_ci;
                    if head > 0 && self.is_punct(head - 1, "!") {
                        head -= 1;
                    }
                    if head > 0 && self.is_punct(head - 1, "#") {
                        on_attr(open_ci + 1, close_ci);
                        fi = self.code[head - 1];
                    } else {
                        return documented;
                    }
                }
                _ => return documented,
            }
        }
    }

    /// `true` when code token `ci` is the first token on its line
    /// (nothing — not even a comment — precedes it there).
    pub fn starts_line(&self, ci: usize) -> bool {
        let Some(&fi) = self.code.get(ci) else {
            return false;
        };
        fi == 0 || self.toks[fi - 1].line < self.toks[fi].line
    }

    /// Marks `#[cfg(test)] mod … { … }` interiors in `in_test`,
    /// mirroring the legacy textual pass: only test *modules* are
    /// skipped; a `#[cfg(test)]` on a bare fn stays in scope.
    fn mark_test_scopes(&mut self) {
        let mut ci = 0usize;
        let mut pending = false;
        while ci < self.n() {
            if self.is_punct(ci, "#") {
                let mut open = ci + 1;
                if self.is_punct(open, "!") {
                    open += 1;
                }
                if self.is_punct(open, "[") {
                    let close = self.match_delim(open);
                    let is_cfg_test = self.is_ident(open + 1, "cfg")
                        && self.is_punct(open + 2, "(")
                        && self.is_ident(open + 3, "test")
                        && self.is_punct(open + 4, ")");
                    if is_cfg_test {
                        pending = true;
                    }
                    ci = close + 1;
                    continue;
                }
            }
            if pending {
                let mut head = ci;
                if self.is_ident(head, "pub") {
                    head += 1;
                    if self.is_punct(head, "(") {
                        head = self.match_delim(head) + 1;
                    }
                }
                if self.is_ident(head, "mod") {
                    // find the block opener before any ';'
                    let mut k = head + 1;
                    while k < self.n() && !self.is_punct(k, "{") && !self.is_punct(k, ";") {
                        k += 1;
                    }
                    if self.is_punct(k, "{") {
                        let close = self.match_delim(k);
                        for m in ci..=close.min(self.n().saturating_sub(1)) {
                            self.in_test[m] = true;
                        }
                        pending = false;
                        ci = close + 1;
                        continue;
                    }
                }
                pending = false;
            }
            ci += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_over(src: &str) -> (Vec<Tok>, Vec<&str>) {
        (lex(src), vec![])
    }

    #[test]
    fn test_scope_covers_cfg_test_mods_only() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn hidden() {}
}
#[cfg(test)]
fn also_live_by_convention() {}
";
        let (toks, _) = ctx_over(src);
        let table = vec![];
        let ctx = FileCtx::new("crates/core/src/x.rs", src, &toks, &table);
        let live: Vec<usize> = (0..ctx.n())
            .filter(|&ci| ctx.is_ident(ci, "fn") && !ctx.in_test(ci))
            .collect();
        assert_eq!(live.len(), 2, "the mod body fn is scoped out");
        let hidden = (0..ctx.n()).find(|&ci| ctx.is_ident(ci, "hidden"));
        assert!(hidden.is_some_and(|ci| ctx.in_test(ci)));
    }

    #[test]
    fn delimiter_matching_and_arg_splitting() {
        let src = "f(a, g(b, c), [d, e]);";
        let (toks, _) = ctx_over(src);
        let table = vec![];
        let ctx = FileCtx::new("x.rs", src, &toks, &table);
        let open = (0..ctx.n())
            .find(|&ci| ctx.is_punct(ci, "("))
            .expect("open paren");
        let close = ctx.match_delim(open);
        assert!(ctx.is_punct(close, ")"));
        let args = ctx.split_args(open + 1, close);
        assert_eq!(args.len(), 3, "{args:?}");
    }

    #[test]
    fn det_annotations_cover_their_line_and_the_next() {
        let src = "// det:fold — commutative\nfor x in set {}\nfor y in set {}\n";
        let (toks, _) = ctx_over(src);
        let table = vec![];
        let ctx = FileCtx::new("x.rs", src, &toks, &table);
        assert!(ctx.det_annotated(1));
        assert!(ctx.det_annotated(2));
        assert!(!ctx.det_annotated(3));
    }

    #[test]
    fn walk_back_sees_docs_through_attributes() {
        let src = "/// Documented.\n#[derive(Clone)]\n#[repr(C)]\npub struct S;\n";
        let (toks, _) = ctx_over(src);
        let table = vec![];
        let ctx = FileCtx::new("x.rs", src, &toks, &table);
        let pub_ci = (0..ctx.n())
            .find(|&ci| ctx.is_ident(ci, "pub"))
            .expect("pub token");
        let mut attrs = 0;
        assert!(ctx.walk_back_attrs(pub_ci, |_, _| attrs += 1));
        assert_eq!(attrs, 2);
    }
}
