/root/repo/target/debug/examples/recommender-1cccbdf975a7b521.d: examples/recommender.rs Cargo.toml

/root/repo/target/debug/examples/librecommender-1cccbdf975a7b521.rmeta: examples/recommender.rs Cargo.toml

examples/recommender.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
