//! `serveload` — the load generator for the online serving runtime.
//! Emits one `BENCH_serve_<dataset>.json` per dataset with an open-loop
//! (seeded Poisson arrivals, two tenants, mixed deadlines) and a
//! closed-loop (fixed client population) leg, both driven entirely in
//! virtual time through [`fastann_serve::ServeRuntime`]. The `zipf`
//! dataset instead runs the same Zipf-skewed open-loop stream twice —
//! static round-robin routing versus the adaptive replication
//! controller — and reports both legs side by side.
//!
//! ```text
//! serveload [--smoke] [--seed N] [--out DIR] [--metrics] [--only NAME] [--gate]
//!   --smoke    tiny synthetic dataset only (the CI smoke invocation)
//!   --seed     workload seed (default 42); same seed => byte-identical JSON
//!   --out      directory for the BENCH_serve_*.json files (default: .)
//!   --metrics  attach a fastann-obs registry to the runtime, embed its
//!              JSON snapshot in the BENCH file and write the Prometheus
//!              rendering next to it as METRICS_serve_<dataset>.prom
//!   --only     substring filter on dataset names (SMOKE / synthetic / zipf)
//!   --gate     fail unless the zipf leg's adaptive routing beats static
//!              routing on rejection rate and p99 latency
//! ```
//!
//! Every quantity in the report is virtual, so the file is a
//! reproducible artifact, not a host measurement: rerunning with the
//! same seed — at any thread count, on any machine — must produce the
//! same bytes, and `ci.sh` enforces exactly that with `cmp`.

use std::fmt::Write as _;

use fastann_core::{DistIndex, EngineConfig, Mutation, RoutingPolicy, SearchOptions};
use fastann_data::quant::Sq8;
use fastann_data::{synth, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_obs::{Metrics, MetricsSnapshot};
use fastann_serve::{
    AdmissionPolicy, ClosedLoopSpec, ClosedRequest, ControllerPolicy, Request, ServeConfig,
    ServeReport, ServeRuntime,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    smoke: bool,
    seed: u64,
    out: String,
    metrics: bool,
    only: Option<String>,
    gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 42,
        out: ".".to_string(),
        metrics: false,
        only: None,
        gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be a number");
            }
            "--out" => args.out = it.next().expect("--out needs a directory"),
            "--metrics" => args.metrics = true,
            "--only" => args.only = Some(it.next().expect("--only needs a dataset name")),
            "--gate" => args.gate = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} (try --smoke / --seed / --out / --metrics / --only / --gate)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

struct Workload {
    name: &'static str,
    points: usize,
    dim: usize,
    open_requests: usize,
    open_rate_qps: f64,
    closed_clients: usize,
    closed_requests: usize,
}

const SMOKE: Workload = Workload {
    name: "SMOKE",
    points: 2_000,
    dim: 16,
    open_requests: 120,
    open_rate_qps: 20_000.0,
    closed_clients: 6,
    closed_requests: 60,
};

const SYNTHETIC: Workload = Workload {
    name: "synthetic",
    points: 20_000,
    dim: 32,
    open_requests: 2_000,
    open_rate_qps: 40_000.0,
    closed_clients: 16,
    closed_requests: 800,
};

const K: usize = 10;

/// Open-loop arrivals: a seeded Poisson process (exponential
/// inter-arrival gaps) over a pool of near-corpus queries, with ~25% of
/// the stream re-submitting an earlier query (cache food), two tenants,
/// and a 20 ms deadline on every fourth request.
fn open_workload(data: &VectorSet, w: &Workload, seed: u64) -> Vec<Request> {
    let pool = synth::queries_near(data, w.open_requests / 2 + 1, 0.02, seed ^ 0x9e37);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mean_gap_ns = 1e9 / w.open_rate_qps;
    let mut at = 0.0f64;
    let mut reqs = Vec::with_capacity(w.open_requests);
    for i in 0..w.open_requests {
        let u: f64 = rng.gen();
        at += -((1.0 - u).max(1e-12_f64)).ln() * mean_gap_ns;
        let reuse = rng.gen_bool(0.25) && i > 0;
        let qi = if reuse {
            rng.gen_range(0..(i / 2 + 1).min(pool.len()))
        } else {
            i % pool.len()
        };
        let mut r = Request::new(i as u64, at, pool.get(qi).to_vec(), K).tenant((i % 2) as u32);
        if i % 4 == 0 {
            r = r.deadline_ns(at + 2e7);
        }
        reqs.push(r);
    }
    reqs
}

fn emit(
    name: &str,
    out_dir: &str,
    open: &ServeReport,
    closed: &ServeReport,
    seed: u64,
    snap: Option<&MetricsSnapshot>,
) {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"dataset\": \"serve_{name}\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"k\": {K},");
    let _ = writeln!(s, "  \"open_loop\":");
    s.push_str(&open.to_json("  "));
    s.push_str(",\n");
    let _ = writeln!(s, "  \"closed_loop\":");
    s.push_str(&closed.to_json("  "));
    if let Some(snap) = snap {
        s.push_str(",\n");
        let _ = writeln!(s, "  \"metrics\":");
        s.push_str(&snap.to_json("  "));
    }
    s.push('\n');
    s.push_str("}\n");
    let path = format!("{out_dir}/BENCH_serve_{name}.json");
    std::fs::write(&path, s).expect("write BENCH_serve json");
    if let Some(snap) = snap {
        let prom = format!("{out_dir}/METRICS_serve_{name}.prom");
        std::fs::write(&prom, snap.to_prometheus()).expect("write METRICS_serve prom");
        println!("{prom}: {} series", snap.len());
    }
    println!(
        "{path}: open {:.0} qps (p99 {:.0} us, {:.1}% rejected, cache {:.0}% hit), \
         closed {:.0} qps over {} clients",
        open.throughput_qps,
        open.p99_ns / 1e3,
        open.rejection_rate() * 100.0,
        open.cache.hit_rate() * 100.0,
        closed.throughput_qps,
        closed.requests,
    );
}

fn run(w: &Workload, seed: u64, out_dir: &str, metrics: bool) {
    eprintln!(
        "serveload: {} ({} x {}, {} open + {} closed requests) ...",
        w.name, w.points, w.dim, w.open_requests, w.closed_requests
    );
    let data = synth::sift_like(w.points, w.dim, seed);
    let build = |s: u64| {
        DistIndex::build(
            &data,
            EngineConfig::new(8, 2)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(s))
                .with_seed(s),
        )
    };

    // open loop: Poisson arrivals against guarded admission
    let cfg = ServeConfig::new(SearchOptions::new(K))
        .with_batch(16, 150_000.0)
        .with_cache_capacity(256)
        .with_admission(AdmissionPolicy {
            tenant_rate_qps: w.open_rate_qps,
            tenant_burst: 32.0,
            max_queue_depth: 128,
            partition_queue_depth: usize::MAX,
        });
    let mut rt = ServeRuntime::new(build(seed), Sq8::encode(&data), cfg);
    // One registry spans both legs: the snapshot folds the serving-layer
    // series and the engine-side ones (router, HNSW, workers, merge) from
    // every dispatched batch, and is bit-identical at any thread count.
    let obs = metrics.then(Metrics::new);
    if let Some(m) = &obs {
        rt.set_metrics(m);
    }
    let open = rt.serve_open(open_workload(&data, w, seed)).report;

    // protocol sanity: the run must conserve requests and make progress
    assert_eq!(
        open.requests,
        open.completed
            + open.rejected_overloaded
            + open.rejected_deadline
            + open.rejected_hot_partition,
        "{}: open-loop outcomes must cover every request",
        w.name
    );
    assert!(
        open.throughput_qps > 0.0,
        "{}: open-loop throughput must be nonzero",
        w.name
    );

    // live-mutation leg: a deterministic churn slice (deletes + upserts)
    // through the runtime, so the metrics snapshot carries the mutation
    // series and the cache-epoch invalidation path runs end to end
    let dead: Vec<u32> = (0..w.points as u32).step_by(97).take(8).collect();
    let mut churn: Vec<Mutation> = dead
        .iter()
        .map(|&g| Mutation::Delete { global_id: g })
        .collect();
    let fresh_rows = synth::sift_like(4, w.dim, seed ^ 0x777);
    churn.extend(fresh_rows.iter().map(|v| Mutation::Upsert {
        global_id: None,
        vector: v.to_vec(),
    }));
    let mutated = rt.apply_mutations(churn);
    assert!(
        mutated
            .outcomes
            .iter()
            .all(fastann_core::MutationOutcome::effective),
        "{}: every churn mutation must apply",
        w.name
    );
    let probe = rt.serve_open(
        dead.iter()
            .enumerate()
            .map(|(i, &g)| Request::new(i as u64, 0.0, data.get(g as usize).to_vec(), K))
            .collect(),
    );
    for c in probe
        .outcomes
        .iter()
        .filter_map(fastann_serve::Outcome::completion)
    {
        assert!(
            c.results.iter().all(|n| !dead.contains(&n.id)),
            "{}: deleted id surfaced after churn",
            w.name
        );
    }

    // closed loop: a fixed client population, fresh runtime (and a
    // rebuilt index installed first, to exercise the epoch path)
    rt.install_index(build(seed ^ 0x5bd1));
    let pool = synth::queries_near(&data, w.closed_requests / 4 + 1, 0.02, seed ^ 0x51ed);
    let closed = rt
        .serve_closed(
            ClosedLoopSpec {
                clients: w.closed_clients,
                total_requests: w.closed_requests,
            },
            |id, client| ClosedRequest {
                query: pool.get(id as usize % pool.len()).to_vec(),
                k: K,
                tenant: (client % 2) as u32,
                deadline_rel_ns: f64::INFINITY,
            },
        )
        .report;
    assert_eq!(
        closed.requests, w.closed_requests as u64,
        "{}: closed loop must issue exactly the configured total",
        w.name
    );
    assert_eq!(
        closed.requests,
        closed.completed
            + closed.rejected_overloaded
            + closed.rejected_deadline
            + closed.rejected_hot_partition,
        "{}: closed-loop outcomes must cover every request",
        w.name
    );
    assert!(
        closed.throughput_qps > 0.0,
        "{}: closed-loop throughput must be nonzero",
        w.name
    );

    let snap = obs.as_ref().map(Metrics::snapshot);
    emit(w.name, out_dir, &open, &closed, seed, snap.as_ref());
}

// --- the Zipf-skewed adaptive-vs-static leg ---------------------------

const ZIPF_POINTS: usize = 4_000;
const ZIPF_DIM: usize = 16;
const ZIPF_REQUESTS: usize = 800;
const ZIPF_RATE_QPS: f64 = 250_000.0;
/// Zipf exponent over partition ranks: rank 1 draws roughly 45% of the
/// stream on an 8-partition index.
const ZIPF_EXPONENT: f64 = 1.3;

/// A Zipf-skewed open-loop stream: each partition gets one representative
/// corpus row, partition ranks are a seeded shuffle, and every request
/// queries (a jittered copy of) the representative drawn from the Zipf
/// distribution over ranks — so one partition is persistently hot while
/// the tail stays nearly idle.
fn zipf_requests(data: &VectorSet, index: &DistIndex, seed: u64) -> Vec<Request> {
    let p = index.n_partitions();
    let mut reps: Vec<Option<usize>> = vec![None; p];
    for i in 0..data.len() {
        let h = index.home_partition(data.get(i)) as usize;
        if reps[h].is_none() {
            reps[h] = Some(i);
            if reps.iter().all(Option::is_some) {
                break;
            }
        }
    }
    let reps: Vec<usize> = reps.into_iter().map(|r| r.unwrap_or(0)).collect();

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x217f);
    let mut order: Vec<usize> = (0..p).collect();
    for i in (1..p).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    let mut cdf = Vec::with_capacity(p);
    let mut acc = 0.0f64;
    for rank in 0..p {
        acc += 1.0 / ((rank + 1) as f64).powf(ZIPF_EXPONENT);
        cdf.push(acc);
    }
    let total = acc;

    let mean_gap_ns = 1e9 / ZIPF_RATE_QPS;
    let mut at = 0.0f64;
    let mut reqs = Vec::with_capacity(ZIPF_REQUESTS);
    for i in 0..ZIPF_REQUESTS {
        let u: f64 = rng.gen::<f64>() * total;
        let rank = cdf.partition_point(|&c| c < u).min(p - 1);
        let mut q = data.get(reps[order[rank]]).to_vec();
        for x in q.iter_mut() {
            *x += (rng.gen::<f32>() - 0.5) * 0.05;
        }
        let gap: f64 = rng.gen();
        at += -((1.0 - gap).max(1e-12_f64)).ln() * mean_gap_ns;
        reqs.push(Request::new(i as u64, at, q, K));
    }
    reqs
}

/// Runs the identical Zipf stream under static round-robin routing and
/// under the adaptive replication controller, and emits both reports
/// (plus the adaptive leg's metrics) as `BENCH_serve_zipf.json`. With
/// `gate`, the adaptive leg must beat the static one on rejection rate
/// and p99 latency, and must actually have raised a replica.
fn run_zipf(seed: u64, out_dir: &str, metrics: bool, gate: bool) {
    eprintln!(
        "serveload: zipf ({ZIPF_POINTS} x {ZIPF_DIM}, {ZIPF_REQUESTS} open requests, s = {ZIPF_EXPONENT}) ..."
    );
    let data = synth::sift_like(ZIPF_POINTS, ZIPF_DIM, seed);
    // one core per node, so extra replicas of a hot partition land on
    // otherwise-idle nodes instead of sharing the hot one
    let build = || {
        // tight routing (fan-out <= 2) keeps the Zipf skew visible at the
        // partition level — the default 4-way fan-out would smear the hot
        // stream across half the cluster
        DistIndex::build(
            &data,
            EngineConfig::new(8, 1)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
                .with_route(fastann_vptree::RouteConfig {
                    margin_frac: 0.05,
                    max_partitions: 2,
                })
                .with_seed(seed),
        )
    };
    let reqs = zipf_requests(&data, &build(), seed);

    let leg = |routing: RoutingPolicy, obs: Option<&Metrics>| -> ServeReport {
        let cfg = ServeConfig::new(SearchOptions::new(K).with_routing(routing))
            .with_batch(16, 50_000.0)
            .with_cache_capacity(0)
            .with_admission(AdmissionPolicy {
                tenant_rate_qps: f64::INFINITY,
                tenant_burst: 64.0,
                max_queue_depth: 256,
                partition_queue_depth: 8,
            })
            // fan-out 2 dilutes the per-partition share (a hot query also
            // probes its runner-up partition), so the hot threshold sits
            // below the default 35%
            .with_controller(
                ControllerPolicy::new()
                    .with_window_ns(2e6)
                    .with_shares(0.22, 0.05),
            );
        let mut rt = ServeRuntime::new(build(), Sq8::encode(&data), cfg);
        if let Some(m) = obs {
            rt.set_metrics(m);
        }
        let report = rt.serve_open(reqs.clone()).report;
        assert_eq!(
            report.requests,
            report.completed
                + report.rejected_overloaded
                + report.rejected_deadline
                + report.rejected_hot_partition,
            "zipf: outcomes must cover every request"
        );
        assert!(report.throughput_qps > 0.0, "zipf: nonzero throughput");
        report
    };

    let fixed = leg(RoutingPolicy::Static(1), None);
    let obs = metrics.then(Metrics::new);
    let adaptive = leg(RoutingPolicy::PowerOfTwo { base: 1, max: 4 }, obs.as_ref());

    println!(
        "zipf: static  {:.1}% rejected (hot {}), p99 {:.0} us",
        fixed.rejection_rate() * 100.0,
        fixed.rejected_hot_partition,
        fixed.p99_ns / 1e3,
    );
    println!(
        "zipf: adaptive {:.1}% rejected (hot {}), p99 {:.0} us, \
         {} raises / {} decays, final replicas {:?}",
        adaptive.rejection_rate() * 100.0,
        adaptive.rejected_hot_partition,
        adaptive.p99_ns / 1e3,
        adaptive.replica_raises,
        adaptive.replica_decays,
        adaptive.final_replicas,
    );
    if gate {
        assert!(
            fixed.rejected_hot_partition > 0,
            "zipf gate: the static leg must actually stress the hot partition"
        );
        assert!(
            adaptive.replica_raises > 0,
            "zipf gate: the controller must raise at least one replica"
        );
        assert!(
            adaptive.rejection_rate() < fixed.rejection_rate(),
            "zipf gate: adaptive rejection rate {:.4} must beat static {:.4}",
            adaptive.rejection_rate(),
            fixed.rejection_rate()
        );
        assert!(
            adaptive.p99_ns < fixed.p99_ns,
            "zipf gate: adaptive p99 {:.0} ns must beat static {:.0} ns",
            adaptive.p99_ns,
            fixed.p99_ns
        );
    }

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"dataset\": \"serve_zipf\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"k\": {K},");
    let _ = writeln!(s, "  \"zipf_exponent\": {ZIPF_EXPONENT},");
    let _ = writeln!(s, "  \"static\":");
    s.push_str(&fixed.to_json("  "));
    s.push_str(",\n");
    let _ = writeln!(s, "  \"adaptive\":");
    s.push_str(&adaptive.to_json("  "));
    let snap = obs.as_ref().map(Metrics::snapshot);
    if let Some(snap) = &snap {
        s.push_str(",\n");
        let _ = writeln!(s, "  \"metrics\":");
        s.push_str(&snap.to_json("  "));
    }
    s.push('\n');
    s.push_str("}\n");
    let path = format!("{out_dir}/BENCH_serve_zipf.json");
    std::fs::write(&path, s).expect("write BENCH_serve_zipf json");
    println!("{path}: written");
    if let Some(snap) = &snap {
        let prom = format!("{out_dir}/METRICS_serve_zipf.prom");
        std::fs::write(&prom, snap.to_prometheus()).expect("write METRICS_serve_zipf prom");
        println!("{prom}: {} series", snap.len());
    }
}

fn main() {
    let args = parse_args();
    let std_name = if args.smoke { "SMOKE" } else { "synthetic" };
    let std_selected = args.only.as_deref().is_none_or(|o| std_name.contains(o));
    let zipf_selected = args
        .only
        .as_deref()
        .map_or(!args.smoke, |o| "zipf".contains(o));
    if !std_selected && !zipf_selected {
        eprintln!(
            "serveload: --only {:?} matches no dataset (SMOKE / synthetic / zipf)",
            args.only.unwrap_or_default()
        );
        std::process::exit(2);
    }
    if std_selected {
        run(
            if args.smoke { &SMOKE } else { &SYNTHETIC },
            args.seed,
            &args.out,
            args.metrics,
        );
    }
    if zipf_selected {
        run_zipf(args.seed, &args.out, args.metrics, args.gate);
    }
}
