/root/repo/target/debug/examples/texmex_pipeline-975dc9d3bd5aa0c0.d: examples/texmex_pipeline.rs

/root/repo/target/debug/examples/texmex_pipeline-975dc9d3bd5aa0c0: examples/texmex_pipeline.rs

examples/texmex_pipeline.rs:
