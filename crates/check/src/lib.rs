//! # fastann-check — workspace correctness tooling
//!
//! Three subsystems keep the workspace honest:
//!
//! * [`lint`] — a textual source lint over `crates/*/src` and `src/`:
//!   no bare `unwrap`, no panicking macros in library code, no
//!   wildcard/untagged receives outside the simulator, every wire tag
//!   registered in `fastann_core::tags::TAG_TABLE`, and doc comments on
//!   every public item of `fastann-core` / `fastann-mpisim`. Justified
//!   exceptions live in `crates/check/allowlist.txt`.
//! * [`race`] — a schedule-perturbation race detector: run the same
//!   workload under K seed-perturbed scheduler interleavings
//!   ([`fastann_mpisim::SchedPerturb`]) and diff the observable events.
//!   Any fault-free divergence is a race, minimized to the first
//!   diverging span with both interleavings' event windows.
//! * the runtime invariant validators themselves live next to the data
//!   structures they check (`Hnsw::validate`, `VpTree::validate`, the
//!   simulator's message-conservation ledger); this crate's CI entry
//!   points make sure they are exercised.
//!
//! The `fastann-check` binary exposes `lint` and `race` subcommands for
//! `ci.sh`.

#![forbid(unsafe_code)]

pub mod lint;
pub mod race;
