//! Streaming top-k selection of nearest neighbours.
//!
//! [`TopK`] is a bounded max-heap keyed on distance: it retains the `k`
//! smallest-distance [`Neighbor`]s seen so far and exposes the current worst
//! (k-th) distance for search pruning. This is the container every search
//! routine in the workspace funnels candidates through, and the unit the
//! distributed engine merges across partitions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One search result: a dataset row id and its distance to the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Row id in the dataset the search ran over.
    pub id: u32,
    /// Distance from the query to that row.
    pub dist: f32,
}

impl Neighbor {
    /// Convenience constructor.
    #[inline]
    pub fn new(id: u32, dist: f32) -> Self {
        Self { id, dist }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    /// Total order by distance (via `f32::total_cmp`), ties broken by id so
    /// that merged results are deterministic across partition orderings.
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded max-heap retaining the `k` nearest neighbours seen so far.
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates an empty collector for the `k` nearest neighbours.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The configured `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbours currently held (`<= k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no neighbour has been offered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` neighbours are held.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Offers a candidate; keeps it only if it improves the current top-k.
    /// Returns `true` when the candidate was retained.
    ///
    /// Offering an exact duplicate (same id, same distance bits) of a
    /// neighbour already held is a no-op. Distributed merges can see the
    /// same `(id, dist)` more than once — replicated probes, retried probes
    /// after a timeout, overlapping partial results — and without the
    /// duplicate check the merged top-k would depend on probe arrival
    /// order: a duplicate arriving early eats a slot (or evicts a distinct
    /// worse candidate) that a distinct candidate arriving late can no
    /// longer claim.
    #[inline]
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.heap.len() < self.k {
            if self.contains_exact(n) {
                return false;
            }
            self.heap.push(n);
            true
        } else if n < *self.heap.peek().expect("non-empty full heap") {
            if self.contains_exact(n) {
                return false;
            }
            // Strictly better than the current worst: replace it.
            *self.heap.peek_mut().expect("non-empty full heap") = n;
            true
        } else {
            false
        }
    }

    /// `true` when an exact copy of `n` is already held. O(k) scan, taken
    /// only on the would-retain paths of [`TopK::push`]; k is small.
    #[inline]
    fn contains_exact(&self, n: Neighbor) -> bool {
        self.heap
            .iter()
            .any(|m| m.id == n.id && m.dist.to_bits() == n.dist.to_bits())
    }

    /// Current worst retained distance — the pruning radius. `f32::INFINITY`
    /// until the collector is full, so that searches never prune while fewer
    /// than `k` candidates have been found.
    #[inline]
    pub fn prune_radius(&self) -> f32 {
        if self.is_full() {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        } else {
            f32::INFINITY
        }
    }

    /// The worst distance currently held (regardless of fullness); `None`
    /// when empty.
    #[inline]
    pub fn worst(&self) -> Option<Neighbor> {
        self.heap.peek().copied()
    }

    /// Merges another collector into this one (used when combining local
    /// partition results into a global answer).
    pub fn merge(&mut self, other: &TopK) {
        for &n in other.heap.iter() {
            self.push(n);
        }
    }

    /// Merges a sorted-or-not slice of neighbours.
    pub fn merge_slice(&mut self, other: &[Neighbor]) {
        for &n in other {
            self.push(n);
        }
    }

    /// Consumes the collector, returning neighbours sorted by ascending
    /// distance (ties by id).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Returns a sorted copy without consuming the collector.
    pub fn to_sorted(&self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (id, d) in [(0u32, 5.0f32), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            t.push(Neighbor::new(id, d));
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(out[0].dist, 1.0);
    }

    #[test]
    fn push_reports_retention() {
        let mut t = TopK::new(2);
        assert!(t.push(Neighbor::new(0, 10.0)));
        assert!(t.push(Neighbor::new(1, 5.0)));
        assert!(!t.push(Neighbor::new(2, 20.0)));
        assert!(t.push(Neighbor::new(3, 1.0)));
    }

    #[test]
    fn prune_radius_infinite_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.prune_radius(), f32::INFINITY);
        t.push(Neighbor::new(0, 1.0));
        assert_eq!(t.prune_radius(), f32::INFINITY);
        t.push(Neighbor::new(1, 2.0));
        assert_eq!(t.prune_radius(), 2.0);
        t.push(Neighbor::new(2, 0.5));
        assert_eq!(t.prune_radius(), 1.0);
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let items: Vec<Neighbor> = (0..20)
            .map(|i| Neighbor::new(i, ((i * 7) % 13) as f32))
            .collect();
        let mut a = TopK::new(5);
        let mut b = TopK::new(5);
        for n in &items[..10] {
            a.push(*n);
        }
        for n in &items[10..] {
            b.push(*n);
        }
        let mut merged = TopK::new(5);
        merged.merge(&a);
        merged.merge(&b);

        let mut direct = TopK::new(5);
        for n in &items {
            direct.push(*n);
        }
        assert_eq!(merged.into_sorted(), direct.into_sorted());
    }

    #[test]
    fn tie_break_by_id_is_deterministic() {
        let mut t = TopK::new(2);
        t.push(Neighbor::new(7, 1.0));
        t.push(Neighbor::new(3, 1.0));
        t.push(Neighbor::new(5, 1.0));
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn handles_fewer_than_k() {
        let mut t = TopK::new(10);
        t.push(Neighbor::new(1, 2.0));
        t.push(Neighbor::new(0, 1.0));
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn merge_slice_and_to_sorted() {
        let mut t = TopK::new(2);
        t.merge_slice(&[
            Neighbor::new(0, 3.0),
            Neighbor::new(1, 1.0),
            Neighbor::new(2, 2.0),
        ]);
        assert_eq!(
            t.to_sorted().iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // to_sorted does not consume
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn k_larger_than_candidate_count_returns_all() {
        let mut t = TopK::new(100);
        for i in 0..7u32 {
            t.push(Neighbor::new(i, i as f32));
        }
        assert!(!t.is_full());
        assert_eq!(
            t.prune_radius(),
            f32::INFINITY,
            "never prune below k results"
        );
        let out = t.into_sorted();
        assert_eq!(out.len(), 7, "k > n yields every candidate, not k");
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn duplicate_distances_select_lowest_ids() {
        // every candidate at the same distance: the id tie-break must pick a
        // unique, deterministic subset (the k smallest ids)
        let mut t = TopK::new(3);
        for id in [9u32, 2, 7, 4, 1, 8] {
            t.push(Neighbor::new(id, 5.0));
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 2, 4]);
        // an exact duplicate of a retained entry must be rejected, not
        // double-counted
        let mut t = TopK::new(2);
        assert!(t.push(Neighbor::new(3, 1.0)));
        assert!(t.push(Neighbor::new(4, 2.0)));
        assert!(
            !t.push(Neighbor::new(4, 2.0)),
            "identical candidate is not 'better'"
        );
        assert_eq!(t.into_sorted().len(), 2);
    }

    #[test]
    fn empty_partition_merges_are_noops() {
        // the engine merges per-partition results; an empty partition (or a
        // degraded probe that never answered) contributes an empty collector
        let mut full = TopK::new(3);
        full.merge_slice(&[Neighbor::new(0, 1.0), Neighbor::new(1, 2.0)]);
        let before = full.to_sorted();

        let empty = TopK::new(3);
        full.merge(&empty);
        full.merge_slice(&[]);
        assert_eq!(full.to_sorted(), before, "merging nothing changes nothing");

        let mut target = TopK::new(3);
        target.merge(&full);
        assert_eq!(
            target.to_sorted(),
            before,
            "merge into empty copies content"
        );

        let mut both = TopK::new(3);
        both.merge(&TopK::new(3));
        assert!(both.is_empty());
        assert_eq!(both.into_sorted(), vec![]);
    }

    #[test]
    fn merge_order_is_irrelevant_even_with_ties() {
        let a_items = [
            Neighbor::new(1, 1.0),
            Neighbor::new(3, 1.0),
            Neighbor::new(5, 2.0),
        ];
        let b_items = [
            Neighbor::new(2, 1.0),
            Neighbor::new(4, 2.0),
            Neighbor::new(6, 1.0),
        ];
        let mut a = TopK::new(4);
        a.merge_slice(&a_items);
        let mut b = TopK::new(4);
        b.merge_slice(&b_items);

        let mut ab = TopK::new(4);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = TopK::new(4);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.into_sorted(), ba.into_sorted());
    }

    #[test]
    fn exact_duplicates_never_double_count() {
        // below capacity: the duplicate must not consume a slot …
        let mut t = TopK::new(3);
        assert!(t.push(Neighbor::new(1, 1.0)));
        assert!(!t.push(Neighbor::new(1, 1.0)), "duplicate while not full");
        assert!(t.push(Neighbor::new(2, 2.0)));
        assert!(t.push(Neighbor::new(3, 3.0)));
        assert_eq!(
            t.to_sorted().iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "slot freed by the rejected duplicate goes to a distinct candidate"
        );

        // … at capacity: a duplicate of a *better* entry must not evict the
        // distinct current worst (the pre-fix behaviour that made merges
        // depend on probe arrival order)
        let mut t = TopK::new(2);
        t.push(Neighbor::new(1, 1.0));
        t.push(Neighbor::new(9, 5.0));
        assert!(
            !t.push(Neighbor::new(1, 1.0)),
            "duplicate of a better entry"
        );
        assert_eq!(
            t.into_sorted().iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![1, 9],
            "the distinct worst entry survives"
        );

        // same id at a *different* distance is a distinct candidate
        let mut t = TopK::new(3);
        t.push(Neighbor::new(1, 2.0));
        assert!(t.push(Neighbor::new(1, 1.0)), "same id, better distance");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn neighbor_total_order_handles_nan() {
        // total_cmp places NaN after all finite values, so a NaN candidate
        // never displaces a real one.
        let mut t = TopK::new(1);
        t.push(Neighbor::new(0, 1.0));
        t.push(Neighbor::new(1, f32::NAN));
        assert_eq!(t.into_sorted()[0].id, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference semantics of a distributed merge: the distinct candidates
    /// (duplicates collapsed), sorted by (distance, id), first k.
    fn reference(cands: &[Neighbor], k: usize) -> Vec<Neighbor> {
        let mut distinct: Vec<Neighbor> = Vec::new();
        for &c in cands {
            if !distinct
                .iter()
                .any(|d| d.id == c.id && d.dist.to_bits() == c.dist.to_bits())
            {
                distinct.push(c);
            }
        }
        distinct.sort_unstable();
        distinct.truncate(k);
        distinct
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn merge_is_invariant_under_arrival_order_and_sharding(
            k in 1usize..8,
            // small id/distance alphabets force heavy ties and duplicates —
            // exactly the regime where arrival order used to leak through
            ids in proptest::collection::vec(0u32..12, 1..40),
            rot in 0usize..40,
            cut in 0usize..40,
        ) {
            let cands: Vec<Neighbor> = ids
                .iter()
                .map(|&id| Neighbor::new(id, ((id * 7) % 3) as f32))
                .collect();
            let want = reference(&cands, k);

            // any rotation of the arrival order …
            let mut rotated = cands.clone();
            rotated.rotate_left(rot % cands.len());
            let mut direct = TopK::new(k);
            direct.merge_slice(&rotated);
            prop_assert_eq!(&direct.into_sorted(), &want);

            // … and any 2-way sharding, merged in either order, agree
            let cut = cut % (cands.len() + 1);
            let (left, right) = cands.split_at(cut);
            let mut a = TopK::new(k);
            a.merge_slice(left);
            let mut b = TopK::new(k);
            b.merge_slice(right);
            let mut ab = TopK::new(k);
            ab.merge(&a);
            ab.merge(&b);
            let mut ba = TopK::new(k);
            ba.merge(&b);
            ba.merge(&a);
            prop_assert_eq!(&ab.into_sorted(), &want);
            prop_assert_eq!(&ba.into_sorted(), &want);
        }
    }
}
