//! The serving report: one run's latency, throughput, rejection, cache
//! and probe statistics, in virtual time.

use std::fmt::Write as _;

use crate::cache::CacheStats;

/// Aggregated outcome of one serving run. Every field derives from
/// virtual-time quantities, so two runs with the same seed and
/// configuration produce bit-identical reports at any thread count — the
/// determinism tests compare these with `==` and the CI smoke hashes the
/// JSON rendering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    /// Requests that arrived (admitted + rejected).
    pub requests: u64,
    /// Requests answered (engine or cache).
    pub completed: u64,
    /// Requests refused with [`crate::Rejection::Overloaded`].
    pub rejected_overloaded: u64,
    /// Requests refused with [`crate::Rejection::DeadlineUnmeetable`].
    pub rejected_deadline: u64,
    /// Requests refused with [`crate::Rejection::HotPartition`] (the
    /// per-partition queue-depth bound).
    pub rejected_hot_partition: u64,
    /// Completed requests whose answer arrived after their deadline.
    pub deadline_misses: u64,
    /// Completed requests flagged degraded by the fault-tolerant path.
    pub degraded: u64,
    /// Engine batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch (0 when no batch was needed).
    pub mean_batch: f64,
    /// Result-cache counters (cumulative over the runtime's lifetime).
    pub cache: CacheStats,
    /// Median end-to-end virtual latency of completed requests (ns).
    pub p50_ns: f64,
    /// 95th-percentile latency (ns).
    pub p95_ns: f64,
    /// 99th-percentile latency (ns).
    pub p99_ns: f64,
    /// Worst latency (ns).
    pub max_ns: f64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Virtual time from the first arrival to the last completion (ns).
    pub makespan_ns: f64,
    /// Completed requests per virtual second.
    pub throughput_qps: f64,
    /// Total virtual time the engine spent serving batches (ns).
    pub engine_busy_ns: f64,
    /// Probe retries across all dispatched batches (fault path only).
    pub retries: u64,
    /// Replica failovers across all dispatched batches (fault path only).
    pub failovers: u64,
    /// Partition probes served per partition, summed over batches.
    pub per_partition_probes: Vec<u64>,
    /// Hot-partition rejections per home partition.
    pub per_partition_rejections: Vec<u64>,
    /// Replica-count raises the adaptive controller applied.
    pub replica_raises: u64,
    /// Replica-count decays the adaptive controller applied.
    pub replica_decays: u64,
    /// Final per-partition replica counts (empty under static routing).
    pub final_replicas: Vec<usize>,
    /// Final replica-map generation (0 under static routing).
    pub routing_generation: u64,
}

impl ServeReport {
    /// Fraction of requests refused by admission control.
    pub fn rejection_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.rejected_overloaded + self.rejected_deadline + self.rejected_hot_partition) as f64
                / self.requests as f64
        }
    }

    /// A 64-bit FNV-1a fingerprint of the full-precision report. Two
    /// reports fingerprint equally iff every field (floats compared by
    /// bits via their shortest-roundtrip rendering) is identical — the
    /// seed-stability hash `ci.sh` compares across repeated runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        // `Debug` renders f64 with shortest-roundtrip precision, so the
        // string is a faithful proxy for the exact field bits
        for b in format!("{self:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Renders the report as a JSON object (no trailing newline), for the
    /// `BENCH_serve_*.json` emitters. `indent` is prepended to every line
    /// so the object can nest inside a larger document.
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let i = indent;
        let _ = writeln!(s, "{i}{{");
        let _ = writeln!(s, "{i}  \"requests\": {},", self.requests);
        let _ = writeln!(s, "{i}  \"completed\": {},", self.completed);
        let _ = writeln!(
            s,
            "{i}  \"rejected_overloaded\": {},",
            self.rejected_overloaded
        );
        let _ = writeln!(s, "{i}  \"rejected_deadline\": {},", self.rejected_deadline);
        let _ = writeln!(
            s,
            "{i}  \"rejected_hot_partition\": {},",
            self.rejected_hot_partition
        );
        let _ = writeln!(s, "{i}  \"rejection_rate\": {:.4},", self.rejection_rate());
        let _ = writeln!(s, "{i}  \"deadline_misses\": {},", self.deadline_misses);
        let _ = writeln!(s, "{i}  \"degraded\": {},", self.degraded);
        let _ = writeln!(s, "{i}  \"batches\": {},", self.batches);
        let _ = writeln!(s, "{i}  \"mean_batch\": {:.3},", self.mean_batch);
        let _ = writeln!(s, "{i}  \"cache\": {{");
        let _ = writeln!(s, "{i}    \"hits\": {},", self.cache.hits);
        let _ = writeln!(s, "{i}    \"misses\": {},", self.cache.misses);
        let _ = writeln!(s, "{i}    \"hit_rate\": {:.4},", self.cache.hit_rate());
        let _ = writeln!(s, "{i}    \"insertions\": {},", self.cache.insertions);
        let _ = writeln!(s, "{i}    \"evictions\": {},", self.cache.evictions);
        let _ = writeln!(s, "{i}    \"stale_drops\": {},", self.cache.stale_drops);
        let _ = writeln!(s, "{i}    \"collisions\": {}", self.cache.collisions);
        let _ = writeln!(s, "{i}  }},");
        let _ = writeln!(s, "{i}  \"latency_virtual_us\": {{");
        let _ = writeln!(s, "{i}    \"p50\": {:.3},", self.p50_ns / 1e3);
        let _ = writeln!(s, "{i}    \"p95\": {:.3},", self.p95_ns / 1e3);
        let _ = writeln!(s, "{i}    \"p99\": {:.3},", self.p99_ns / 1e3);
        let _ = writeln!(s, "{i}    \"max\": {:.3},", self.max_ns / 1e3);
        let _ = writeln!(s, "{i}    \"mean\": {:.3}", self.mean_ns / 1e3);
        let _ = writeln!(s, "{i}  }},");
        let _ = writeln!(
            s,
            "{i}  \"makespan_virtual_ms\": {:.3},",
            self.makespan_ns / 1e6
        );
        let _ = writeln!(s, "{i}  \"throughput_qps\": {:.1},", self.throughput_qps);
        let _ = writeln!(
            s,
            "{i}  \"engine_busy_ms\": {:.3},",
            self.engine_busy_ns / 1e6
        );
        let _ = writeln!(s, "{i}  \"retries\": {},", self.retries);
        let _ = writeln!(s, "{i}  \"failovers\": {},", self.failovers);
        let probes: Vec<String> = self
            .per_partition_probes
            .iter()
            .map(u64::to_string)
            .collect();
        let _ = writeln!(s, "{i}  \"per_partition_probes\": [{}],", probes.join(", "));
        let rejections: Vec<String> = self
            .per_partition_rejections
            .iter()
            .map(u64::to_string)
            .collect();
        let _ = writeln!(
            s,
            "{i}  \"per_partition_rejections\": [{}],",
            rejections.join(", ")
        );
        let _ = writeln!(s, "{i}  \"replica_raises\": {},", self.replica_raises);
        let _ = writeln!(s, "{i}  \"replica_decays\": {},", self.replica_decays);
        let finals: Vec<String> = self.final_replicas.iter().map(usize::to_string).collect();
        let _ = writeln!(s, "{i}  \"final_replicas\": [{}],", finals.join(", "));
        let _ = writeln!(
            s,
            "{i}  \"routing_generation\": {},",
            self.routing_generation
        );
        let _ = writeln!(s, "{i}  \"fingerprint\": \"{:#018x}\"", self.fingerprint());
        let _ = write!(s, "{i}}}");
        s
    }
}

/// `p`-th percentile (0 ≤ p ≤ 1) of an ascending-sorted slice, by the
/// nearest-rank index `round((n-1)·p)`; 0 for an empty slice.
pub(crate) fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let a = ServeReport::default();
        assert_eq!(a.fingerprint(), ServeReport::default().fingerprint());
        let b = ServeReport {
            p99_ns: 1e-12, // tiny change must flip the fingerprint
            ..Default::default()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn json_renders_and_nests() {
        let r = ServeReport {
            per_partition_probes: vec![3, 1, 4],
            ..Default::default()
        };
        let j = r.to_json("  ");
        assert!(j.starts_with("  {"));
        assert!(j.ends_with('}'));
        assert!(j.contains("\"per_partition_probes\": [3, 1, 4]"));
        assert!(j.contains("\"fingerprint\": \"0x"));
    }
}
