//! End-to-end integration: generate → distribute → index → search → verify,
//! across every crate in the workspace.

use fastann::core::{
    search_batch_multi_owner, DistIndex, EngineConfig, RoutingPolicy, SearchOptions, SearchRequest,
};
use fastann::data::{ground_truth, synth, Distance, VectorSet};
use fastann::hnsw::HnswConfig;
use fastann::vptree::RouteConfig;

fn small_engine(cores: usize, per_node: usize, seed: u64) -> EngineConfig {
    EngineConfig::new(cores, per_node)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
        .with_seed(seed)
}

#[test]
fn full_pipeline_reaches_target_recall() {
    let data = synth::sift_like(6_000, 32, 101);
    let queries = synth::queries_near(&data, 50, 0.02, 102);
    let cfg = small_engine(8, 2, 101).with_route(RouteConfig {
        margin_frac: 0.3,
        max_partitions: 6,
    });
    let index = DistIndex::build(&data, cfg);
    let report = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10).with_ef(128))
        .run();
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
    let recall = ground_truth::recall_at_k(&report.results, &gt, 10);
    assert!(
        recall.mean > 0.8,
        "end-to-end recall {:.3} too low",
        recall.mean
    );
}

#[test]
fn transports_and_strategies_agree_on_results() {
    let data = synth::deep_like(3_000, 24, 103);
    let queries = synth::queries_near(&data, 20, 0.02, 104);
    let index = DistIndex::build(&data, small_engine(8, 2, 103));
    let a = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(5).with_one_sided(true))
        .run();
    let b = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(5).with_one_sided(false))
        .run();
    let c = search_batch_multi_owner(&index, &queries, &SearchOptions::new(5));
    assert_eq!(a.results, b.results, "one-sided vs two-sided");
    assert_eq!(a.results, c.results, "master-worker vs multiple-owner");
}

#[test]
fn replication_factors_preserve_results_and_balance_load() {
    let data = synth::sift_like(4_000, 16, 105);
    // skewed queries: everything near one point
    let mut queries = VectorSet::new(16);
    for i in 0..40 {
        let mut q = data.get(7).to_vec();
        q[0] += i as f32 * 0.01;
        queries.push(&q);
    }
    let mut cfg = small_engine(16, 2, 105);
    cfg.route = RouteConfig {
        margin_frac: 0.0,
        max_partitions: 1,
    };
    let index = DistIndex::build(&data, cfg);
    let r1 = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(5).with_routing(RoutingPolicy::Static(1)))
        .run();
    let r4 = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(5).with_routing(RoutingPolicy::Static(4)))
        .run();
    assert_eq!(
        r1.results, r4.results,
        "replication must not change answers"
    );
    assert!(
        r4.query_distribution().max < r1.query_distribution().max,
        "replication must spread the hot partition"
    );
}

#[test]
fn distributed_equals_single_partition_when_routing_everywhere() {
    // With the routing budget covering every partition and exhaustive local
    // search (ef >= partition size), the distributed result must equal
    // exact brute force.
    let data = synth::sift_like(800, 8, 107);
    let queries = synth::queries_near(&data, 10, 0.05, 108);
    let cfg = small_engine(4, 2, 107).with_route(RouteConfig {
        margin_frac: f32::INFINITY,
        max_partitions: usize::MAX,
    });
    let index = DistIndex::build(&data, cfg);
    let report = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(5).with_ef(800))
        .run();
    let gt = ground_truth::brute_force(&data, &queries, 5, Distance::L2);
    for (got, want) in report.results.iter().zip(&gt) {
        let got_ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        let want_ids: Vec<u32> = want.iter().map(|n| n.id).collect();
        // HNSW is approximate even exhaustively parameterised only through
        // graph connectivity; demand >= 4 of 5 on every query
        let hit = got_ids.iter().filter(|id| want_ids.contains(id)).count();
        assert!(
            hit >= 4,
            "query result too far from exact: {got_ids:?} vs {want_ids:?}"
        );
    }
}

#[test]
fn build_then_many_batches_is_consistent() {
    // One build serving several query batches (the throughput scenario the
    // paper motivates): results for identical queries must be identical
    // across batches.
    let data = synth::sift_like(2_000, 16, 109);
    let queries = synth::queries_near(&data, 15, 0.02, 110);
    let index = DistIndex::build(&data, small_engine(4, 2, 109));
    let first = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10))
        .run();
    for _ in 0..3 {
        let again = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(10))
            .run();
        assert_eq!(first.results, again.results);
    }
}

#[test]
fn works_under_l1_metric() {
    let data = synth::sift_like(2_000, 16, 111);
    let queries = synth::queries_near(&data, 15, 0.02, 112);
    let mut cfg = small_engine(4, 2, 111);
    cfg.metric = Distance::L1;
    let index = DistIndex::build(&data, cfg);
    let report = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10).with_ef(128))
        .run();
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L1);
    let recall = ground_truth::recall_at_k(&report.results, &gt, 10);
    assert!(recall.mean > 0.6, "L1 recall {:.3}", recall.mean);
}
