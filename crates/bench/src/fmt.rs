//! Small table/number formatting helpers for the experiment reports.

/// Formats virtual nanoseconds as an adaptive human unit.
pub fn ns(v: f64) -> String {
    if v >= 60e9 {
        format!("{:.2} min", v / 60e9)
    } else if v >= 1e9 {
        format!("{:.2} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} µs", v / 1e3)
    } else {
        format!("{v:.0} ns")
    }
}

/// Renders a markdown-style table: header row + aligned body rows.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line.push('\n');
        line
    };
    let hdr: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_units() {
        assert_eq!(ns(500.0), "500 ns");
        assert_eq!(ns(2_500.0), "2.50 µs");
        assert_eq!(ns(3.2e6), "3.20 ms");
        assert_eq!(ns(7.5e9), "7.50 s");
        assert_eq!(ns(120e9), "2.00 min");
    }

    #[test]
    fn table_renders_aligned() {
        let t = table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[1].starts_with("|-"));
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
