//! Micro-benchmarks of the distance kernels — the operation every virtual
//! clock in the simulation is priced in. Run `cargo bench -p fastann-bench`
//! and compare `ns/eval` with the [`fastann_mpisim::CostModel`] defaults.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastann_data::metric::{cosine, dot, l1, squared_l2};
use fastann_data::synth;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [16usize, 96, 128, 512, 960] {
        let a = synth::sift_like(1, dim, 1);
        let b = synth::sift_like(1, dim, 2);
        let (a, b) = (a.get(0).to_vec(), b.get(0).to_vec());
        group.bench_with_input(BenchmarkId::new("squared_l2", dim), &dim, |bench, _| {
            bench.iter(|| squared_l2(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l1", dim), &dim, |bench, _| {
            bench.iter(|| l1(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| dot(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bench, _| {
            bench.iter(|| cosine(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_batch_scan(c: &mut Criterion) {
    // brute-force scan throughput: the building block of ground truth
    let data = synth::sift_like(10_000, 128, 3);
    let q = synth::sift_like(1, 128, 4);
    let q = q.get(0).to_vec();
    c.bench_function("scan_10k_x_128d", |bench| {
        bench.iter(|| {
            let mut best = f32::INFINITY;
            for row in data.iter() {
                let d = squared_l2(black_box(&q), row);
                if d < best {
                    best = d;
                }
            }
            best
        })
    });
}

criterion_group!(benches, bench_kernels, bench_batch_scan);
criterion_main!(benches);
