//! Schedule-perturbation race detector.
//!
//! The simulator folds message arrivals into virtual time in the order
//! receives complete, so a protocol whose *observable results* depend on
//! the OS thread schedule is racy even though every individual run looks
//! plausible (the PR 1 wildcard-receive bug class). The detector makes
//! that class mechanically checkable: run the same workload under K
//! seed-perturbed scheduler interleavings ([`fastann_mpisim::SchedPerturb`]
//! — wildcard-match reordering, receive-boundary stalls, vthread
//! tie-break shuffles; all virtual-time neutral) and diff the event
//! streams. Seed 0 is the identity schedule and serves as the baseline;
//! any fault-free divergence is a race, minimized to the first diverging
//! index with both interleavings' event windows around it.

use fastann_core::{DistIndex, EngineConfig, QueryReport, SearchOptions, SearchRequest};
use fastann_data::synth;

/// How many events around the first divergence each window keeps.
const WINDOW: usize = 4;

/// One schedule divergence: the workload observed different events under
/// a perturbed interleaving than under the identity schedule.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The perturbation seed that exposed the race.
    pub seed: u64,
    /// Position of the diverging schedule in the exploration order
    /// (0-based): rerunning with the same base seed and `k >
    /// schedule_index` replays this exact interleaving.
    pub schedule_index: usize,
    /// Index of the first diverging event (may equal the shorter run's
    /// length when one interleaving produced extra events).
    pub index: usize,
    /// Baseline events around `index` (up to [`WINDOW`] before it).
    pub baseline_window: Vec<String>,
    /// Perturbed events around `index`.
    pub perturbed_window: Vec<String>,
}

/// Outcome of exploring K perturbed interleavings of one workload.
#[derive(Debug)]
pub struct RaceReport {
    /// How many perturbed runs were executed (the baseline is extra).
    pub runs: usize,
    /// The base seed the perturbation seeds were derived from; together
    /// with a divergence's `schedule_index` it pins the exact
    /// reproducing invocation.
    pub base_seed: u64,
    /// Event count of the identity-schedule baseline.
    pub baseline_len: usize,
    /// All divergences found, one per diverging seed.
    pub divergences: Vec<Divergence>,
}

impl RaceReport {
    /// `true` when every perturbed interleaving reproduced the baseline.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Multi-line human rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.divergences {
            out.push_str(&format!(
                "divergence under seed {:#x} at event {}:\n",
                d.seed, d.index
            ));
            out.push_str("  baseline:\n");
            for e in &d.baseline_window {
                out.push_str(&format!("    {e}\n"));
            }
            out.push_str("  perturbed:\n");
            for e in &d.perturbed_window {
                out.push_str(&format!("    {e}\n"));
            }
            // the exact reproducing invocation: the derived seed is a
            // pure function of (base seed, schedule index), so a run
            // with k just past the index replays this interleaving
            out.push_str(&format!(
                "  reproduce: cargo run -p fastann-check -- race --k {} --seed {:#x}  (schedule index {}, derived seed {:#x})\n",
                d.schedule_index + 1,
                self.base_seed,
                d.schedule_index,
                d.seed
            ));
        }
        out.push_str(&format!(
            "race: {} perturbed runs against a {}-event baseline, {} divergences\n",
            self.runs,
            self.baseline_len,
            self.divergences.len()
        ));
        out
    }
}

/// Runs `workload` once with seed 0 (the identity schedule) and then
/// under `k` seeds derived from `base_seed`, diffing each perturbed
/// event stream against the baseline.
///
/// The workload maps a scheduler-perturbation seed to the ordered list
/// of observable events; it must be a pure function of that seed for a
/// correct (race-free) protocol.
pub fn explore<F>(k: usize, base_seed: u64, workload: F) -> RaceReport
where
    F: Fn(u64) -> Vec<String>,
{
    let baseline = workload(0);
    let mut divergences = Vec::new();
    for i in 0..k {
        let seed = derive_seed(base_seed, i as u64);
        let run = workload(seed);
        if let Some(index) = first_divergence(&baseline, &run) {
            divergences.push(Divergence {
                seed,
                schedule_index: i,
                index,
                baseline_window: window(&baseline, index),
                perturbed_window: window(&run, index),
            });
        }
    }
    RaceReport {
        runs: k,
        base_seed,
        baseline_len: baseline.len(),
        divergences,
    }
}

/// Derives the i-th nonzero perturbation seed from `base_seed`
/// (splitmix64; seed 0 is reserved for the identity schedule).
fn derive_seed(base_seed: u64, i: u64) -> u64 {
    let mut z = base_seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        z = 1;
    }
    z
}

fn first_divergence(a: &[String], b: &[String]) -> Option<usize> {
    let shared = a.len().min(b.len());
    for i in 0..shared {
        if a[i] != b[i] {
            return Some(i);
        }
    }
    (a.len() != b.len()).then_some(shared)
}

fn window(events: &[String], index: usize) -> Vec<String> {
    let hi = events.len().min(index + 1);
    let lo = hi.saturating_sub(WINDOW + 1);
    events[lo..hi].to_vec()
}

/// Flattens a [`QueryReport`] into an ordered event stream for diffing.
///
/// Per-query results encode distances through their bit patterns so the
/// comparison is exact, followed by the report-level aggregates — any
/// schedule sensitivity in results, routing, placement or timing shows
/// up as a divergence.
pub fn report_events(rep: &QueryReport) -> Vec<String> {
    let mut ev = Vec::with_capacity(rep.results.len() + 4);
    for (qi, res) in rep.results.iter().enumerate() {
        let body: Vec<String> = res
            .iter()
            .map(|n| format!("{}:{:08x}", n.id, n.dist.to_bits()))
            .collect();
        ev.push(format!(
            "q{qi} [{}] degraded={}",
            body.join(","),
            rep.degraded.get(qi).copied().unwrap_or(false)
        ));
    }
    ev.push(format!(
        "timing total={:016x} route={:016x} wait={:016x}",
        rep.total_ns.to_bits(),
        rep.master_route_ns.to_bits(),
        rep.master_wait_ns.to_bits()
    ));
    ev.push(format!("per_core={:?}", rep.per_core_queries));
    ev.push(format!(
        "ndist={} result_bytes={} fanout={:016x}",
        rep.total_ndist,
        rep.result_bytes,
        rep.mean_fanout.to_bits()
    ));
    ev
}

/// Builds a small engine once and returns a seed → events workload over
/// it: the fault-free `search_batch` path under `sched_seed`, flattened
/// with [`report_events`]. Used by the CLI `race` subcommand and the
/// K=8 CI smoke.
pub fn engine_workload() -> impl Fn(u64) -> Vec<String> {
    let data = synth::sift_like(900, 12, 42);
    let queries = synth::queries_near(&data, 10, 0.02, 43);
    let index = DistIndex::build(&data, EngineConfig::new(8, 2).with_seed(42));
    move |seed| {
        let opts = SearchOptions::new(8).with_sched_seed(seed);
        report_events(&SearchRequest::new(&index, &queries).opts(opts).run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_nonzero_and_spread() {
        let seeds: Vec<u64> = (0..16).map(|i| derive_seed(0, i)).collect();
        assert!(seeds.iter().all(|&s| s != 0));
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "derived seeds must not collide");
    }

    #[test]
    fn explore_flags_first_divergence_with_windows() {
        // a "workload" that shifts one event under any nonzero seed
        let workload = |seed: u64| {
            (0..10)
                .map(|i| {
                    if seed != 0 && i == 6 {
                        "evt-6'".to_string()
                    } else {
                        format!("evt-{i}")
                    }
                })
                .collect::<Vec<_>>()
        };
        let report = explore(3, 99, workload);
        assert_eq!(report.runs, 3);
        assert_eq!(report.base_seed, 99);
        assert_eq!(report.baseline_len, 10);
        assert_eq!(report.divergences.len(), 3);
        let d = &report.divergences[0];
        assert_eq!(d.index, 6);
        assert_eq!(d.schedule_index, 0);
        assert_eq!(report.divergences[2].schedule_index, 2);
        assert_eq!(d.baseline_window.last().map(String::as_str), Some("evt-6"));
        assert_eq!(
            d.perturbed_window.last().map(String::as_str),
            Some("evt-6'")
        );
        assert!(d.baseline_window.len() <= WINDOW + 1);
    }

    #[test]
    fn explore_handles_length_divergence() {
        let workload = |seed: u64| {
            let n = if seed == 0 { 5 } else { 3 };
            (0..n).map(|i| format!("evt-{i}")).collect::<Vec<_>>()
        };
        let report = explore(1, 7, workload);
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].index, 3);
    }

    #[test]
    fn explore_is_clean_on_seed_independent_workloads() {
        let workload = |_seed: u64| vec!["a".to_string(), "b".to_string()];
        assert!(explore(4, 1, workload).is_clean());
    }

    #[test]
    fn render_prints_the_exact_reproducing_invocation() {
        // diverge only under the third derived schedule (index 2), so
        // the repro line must name --k 3 and that schedule's seed
        let trigger = derive_seed(0x5EED, 2);
        let workload = move |seed: u64| {
            if seed == trigger {
                vec!["evt-0'".to_string()]
            } else {
                vec!["evt-0".to_string()]
            }
        };
        let report = explore(8, 0x5EED, workload);
        assert_eq!(report.divergences.len(), 1);
        let rendered = report.render();
        assert!(
            rendered.contains("reproduce: cargo run -p fastann-check -- race --k 3 --seed 0x5eed"),
            "{rendered}"
        );
        assert!(
            rendered.contains(&format!("derived seed {trigger:#x}")),
            "{rendered}"
        );
    }
}
