//! `wildcard-recv` and `tag-registry`: the message-passing discipline
//! rules.
//!
//! Outside the simulator, every receive must be source- and tag-exact
//! (`None` in either position is the PR 1 wildcard-receive bug class),
//! every `TAG_*` constant must agree with the registry in
//! `crates/core/src/tags.rs`, and every sent tag must be symbolic.

use crate::engine::FileCtx;
use crate::lint::{Violation, RULE_RECV, RULE_TAG};

/// Runs both rules over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if ctx.rel.starts_with("crates/mpisim/") {
        return;
    }
    let is_tags_file = ctx.rel == "crates/core/src/tags.rs";
    for ci in 0..ctx.n() {
        if ctx.in_test(ci) {
            continue;
        }
        // .recv( / .try_recv( with a None argument
        if ctx.is_punct(ci, ".")
            && (ctx.is_ident(ci + 1, "recv") || ctx.is_ident(ci + 1, "try_recv"))
            && ctx.is_punct(ci + 2, "(")
        {
            let close = ctx.match_delim(ci + 2);
            if (ci + 3..close).any(|cj| ctx.is_ident(cj, "None")) {
                ctx.flag(out, ci + 1, RULE_RECV);
            }
        }
        if is_tags_file {
            continue;
        }
        // const TAG_* declarations must match the registry
        if ctx.is_ident(ci, "const") {
            if let Some(name) = ctx.ident(ci + 1).filter(|n| n.starts_with("TAG_")) {
                let name = name.to_string();
                // const NAME : ty = <int> ;
                let mut cj = ci + 2;
                while cj < ctx.n() && !ctx.is_punct(cj, "=") && !ctx.is_punct(cj, ";") {
                    cj += 1;
                }
                let value = ctx
                    .t(cj + 1)
                    .filter(|t| t.kind == crate::lexer::TokKind::Num)
                    .and_then(|t| t.text.replace('_', "").parse::<u64>().ok());
                if let Some(value) = value {
                    let registered = ctx.tag_table.iter().any(|(n, v)| *n == name && *v == value);
                    if !registered {
                        ctx.flag_msg(
                            out,
                            ci + 1,
                            RULE_TAG,
                            format!(
                                "{name} = {value} is not registered in core/src/tags.rs TAG_TABLE"
                            ),
                        );
                    }
                }
            }
        }
        // sent tags must be symbolic: second argument of
        // .send_bytes( / .send_bytes_at( mentions TAG_ or *tag*
        if ctx.is_punct(ci, ".")
            && (ctx.is_ident(ci + 1, "send_bytes") || ctx.is_ident(ci + 1, "send_bytes_at"))
            && ctx.is_punct(ci + 2, "(")
        {
            let close = ctx.match_delim(ci + 2);
            let args = ctx.split_args(ci + 3, close);
            let tag_ok = args.get(1).is_some_and(|&(lo, hi)| {
                (lo..hi).any(|cj| {
                    ctx.ident(cj)
                        .is_some_and(|id| id.contains("TAG_") || id.to_lowercase().contains("tag"))
                })
            });
            if !tag_ok {
                ctx.flag_msg(
                    out,
                    ci + 1,
                    RULE_TAG,
                    format!(
                        "tag argument is not a TAG_* identifier: {}",
                        ctx.snippet(ctx.line(ci + 1))
                    ),
                );
            }
        }
    }
}
