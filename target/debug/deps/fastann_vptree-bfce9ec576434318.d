/root/repo/target/debug/deps/fastann_vptree-bfce9ec576434318.d: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

/root/repo/target/debug/deps/fastann_vptree-bfce9ec576434318: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

crates/vptree/src/lib.rs:
crates/vptree/src/partition.rs:
crates/vptree/src/tree.rs:
crates/vptree/src/vantage.rs:
