//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it uses: cheaply-cloneable immutable [`Bytes`]
//! (`Arc`-backed slices with `split_to`), growable [`BytesMut`] with
//! `freeze`, and the little-endian `get_*`/`put_*` accessors of the
//! [`Buf`]/[`BufMut`] traits. Semantics match upstream for this subset
//! (panics on underflow, zero-copy clones/splits); the wider vectored-IO
//! API is intentionally absent.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice (copied into shared storage; upstream is
    /// zero-copy here, but nothing in this workspace is sensitive to that).
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Bytes in view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes, leaving the rest
    /// (shared storage, no copy).
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {at} > {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// The view as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes (also available without importing [`BufMut`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] (takes ownership of the
    /// storage).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian readers (subset of `bytes::Buf`).
///
/// All `get_*` methods panic on underflow, matching upstream.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// `true` while at least one byte remains.
    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    #[inline]
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} have {}",
            dst.len(),
            self.len()
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    #[inline]
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

/// Sequential little-endian writers (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    #[inline]
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(u64::MAX - 1);
        b.put_f32_le(-1.25);
        b.put_f64_le(std::f64::consts::E);
        let mut r = b.freeze();
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), -1.25);
        assert_eq!(r.get_f64_le(), std::f64::consts::E);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(head.len() + b.len(), 5);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![9u8; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 1000);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    #[should_panic]
    fn split_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.split_to(2);
    }

    #[test]
    fn from_static_and_empty() {
        let s = Bytes::from_static(b"abc");
        assert_eq!(&s[..], b"abc");
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(e.to_vec(), Vec::<u8>::new());
    }
}
