/root/repo/target/release/deps/fastann_core-c4f11c0e1c121a26.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/local.rs crates/core/src/owner.rs crates/core/src/persist.rs crates/core/src/router.rs crates/core/src/stats.rs crates/core/src/tune.rs

/root/repo/target/release/deps/fastann_core-c4f11c0e1c121a26: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/local.rs crates/core/src/owner.rs crates/core/src/persist.rs crates/core/src/router.rs crates/core/src/stats.rs crates/core/src/tune.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/local.rs:
crates/core/src/owner.rs:
crates/core/src/persist.rs:
crates/core/src/router.rs:
crates/core/src/stats.rs:
crates/core/src/tune.rs:
