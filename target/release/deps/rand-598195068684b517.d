/root/repo/target/release/deps/rand-598195068684b517.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-598195068684b517.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-598195068684b517.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
