//! Serving-runtime configuration: batching, admission, cache and
//! dispatch policies.

use fastann_core::SearchOptions;
use fastann_mpisim::FaultPlan;

use crate::controller::ControllerPolicy;

/// Micro-batcher policy: requests coalesce into one engine batch until
/// either bound trips.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests have coalesced.
    pub max_batch: usize,
    /// Flush this long (virtual ns) after the oldest request in the
    /// forming batch arrived, even if the batch is not full — the latency
    /// bound a single stray request pays for batching.
    pub max_wait_ns: f64,
}

impl Default for BatchPolicy {
    /// 32 requests or 200 µs, whichever comes first.
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait_ns: 200_000.0,
        }
    }
}

/// Admission-control policy: per-tenant rate limits plus a global bound on
/// outstanding work.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Sustained per-tenant rate (queries per virtual second);
    /// `f64::INFINITY` disables rate limiting.
    pub tenant_rate_qps: f64,
    /// Per-tenant burst allowance (token-bucket capacity).
    pub tenant_burst: f64,
    /// Upper bound on outstanding admitted requests (forming batch plus
    /// dispatched-but-unfinished); `usize::MAX` disables the bound.
    pub max_queue_depth: usize,
    /// Upper bound on outstanding admitted requests whose *home partition*
    /// is the same — overload on one hot partition sheds on that
    /// partition's queue instead of globally; `usize::MAX` disables the
    /// bound.
    pub partition_queue_depth: usize,
}

impl Default for AdmissionPolicy {
    /// Everything open: no rate limit, no depth bound. Serving deployments
    /// tighten these; the defaults keep unit workloads unthrottled.
    fn default() -> Self {
        Self {
            tenant_rate_qps: f64::INFINITY,
            tenant_burst: 64.0,
            max_queue_depth: usize::MAX,
            partition_queue_depth: usize::MAX,
        }
    }
}

/// Full configuration of a [`crate::ServeRuntime`].
///
/// `#[non_exhaustive]`: construct with [`ServeConfig::new`] (or
/// `default()`) and refine with the `with_*` setters — new knobs may be
/// added without breaking callers.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Micro-batcher bounds.
    pub batch: BatchPolicy,
    /// Admission-control bounds.
    pub admission: AdmissionPolicy,
    /// Result-cache capacity in entries; `0` disables the cache.
    pub cache_capacity: usize,
    /// Engine search options each dispatched batch uses. `k` and `ef` are
    /// raised per batch to cover the largest `k` in the batch; the
    /// per-probe `timeout_ns` is clamped to the tightest deadline headroom
    /// ([`SearchOptions::cap_timeout_ns`]).
    pub search: SearchOptions,
    /// Optional fault plan: when set (and non-vacuous), batches dispatch
    /// through the fault-tolerant chaos path.
    pub fault: Option<FaultPlan>,
    /// Virtual latency of a cache-served answer (key encode + probe +
    /// copy-out; no engine dispatch).
    pub cache_hit_ns: f64,
    /// Initial estimate of one batch's engine service time, used for
    /// deadline-feasibility checks before the first batch completes; the
    /// runtime then tracks an exponential moving average of observed
    /// service times.
    pub service_estimate_ns: f64,
    /// Closed-loop clients back off this long (virtual ns) after a
    /// rejection before issuing their next request.
    pub retry_backoff_ns: f64,
    /// Knobs of the adaptive replication controller; only consulted when
    /// [`ServeConfig::search`] carries an adaptive
    /// [`fastann_core::RoutingPolicy`].
    pub controller: ControllerPolicy,
}

impl Default for ServeConfig {
    /// Default serving stack over default [`SearchOptions`] (`k = 10`).
    fn default() -> Self {
        Self::new(SearchOptions::default())
    }
}

impl ServeConfig {
    /// Defaults around the given engine search options: 32/200 µs
    /// batching, open admission, a 1024-entry cache, no faults.
    pub fn new(search: SearchOptions) -> Self {
        Self {
            batch: BatchPolicy::default(),
            admission: AdmissionPolicy::default(),
            cache_capacity: 1024,
            search,
            fault: None,
            cache_hit_ns: 2_000.0,
            service_estimate_ns: 2e6,
            retry_backoff_ns: 200_000.0,
            controller: ControllerPolicy::default(),
        }
    }

    /// Sets the micro-batcher policy (builder style).
    pub fn with_batch(mut self, max_batch: usize, max_wait_ns: f64) -> Self {
        assert!(max_batch >= 1, "batch size must be positive");
        assert!(max_wait_ns >= 0.0, "batch wait must be non-negative");
        self.batch = BatchPolicy {
            max_batch,
            max_wait_ns,
        };
        self
    }

    /// Sets the admission policy (builder style).
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        assert!(policy.tenant_rate_qps > 0.0, "tenant rate must be positive");
        assert!(policy.tenant_burst >= 1.0, "burst must allow one request");
        self.admission = policy;
        self
    }

    /// Sets the result-cache capacity; `0` disables (builder style).
    pub fn with_cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Sets the fault plan for dispatched batches (builder style).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the adaptive replication controller's knobs (builder style).
    pub fn with_controller(mut self, policy: ControllerPolicy) -> Self {
        self.controller = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_open() {
        let c = ServeConfig::new(SearchOptions::new(10));
        assert_eq!(c.batch.max_batch, 32);
        assert!(c.admission.tenant_rate_qps.is_infinite());
        assert_eq!(c.admission.max_queue_depth, usize::MAX);
        assert!(c.fault.is_none());
        assert!(c.cache_capacity > 0);
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        let _ = ServeConfig::new(SearchOptions::new(10)).with_batch(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_burst_rejected() {
        let _ = ServeConfig::new(SearchOptions::new(10)).with_admission(AdmissionPolicy {
            tenant_rate_qps: 100.0,
            tenant_burst: 0.0,
            max_queue_depth: 8,
            partition_queue_depth: usize::MAX,
        });
    }
}
