//! Run reports: construction and query-phase accounting.

use fastann_data::Neighbor;

/// Construction-phase accounting (paper Table II's columns).
///
/// `PartialEq` compares every field — the threading determinism tests
/// assert that a `threads > 1` build produces *identical* stats.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BuildStats {
    /// Total virtual construction time: VP-tree phase + HNSW phase (ns).
    pub total_ns: f64,
    /// Virtual time of the distributed VP-tree phase, including shuffles
    /// and skeleton assembly (ns).
    pub vptree_ns: f64,
    /// Virtual time of the per-partition HNSW construction phase — the max
    /// over nodes of their thread-pool makespan (ns).
    pub hnsw_ns: f64,
    /// Total bytes moved by the `Alltoallv` shuffles.
    pub shuffle_bytes: u64,
    /// Total distance evaluations spent building the HNSW indexes.
    pub hnsw_ndist: u64,
    /// Points per partition (diagnoses partitioning balance).
    pub partition_sizes: Vec<usize>,
}

/// Five-number-ish summary of a per-core distribution (used for the
/// replication study, paper Figure 4(b)).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Distribution {
    /// Smallest value.
    pub min: u64,
    /// Lower quartile.
    pub q1: u64,
    /// Median.
    pub median: u64,
    /// Upper quartile.
    pub q3: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Summarises `values` (need not be sorted; empty input yields zeros).
    pub fn of(values: &[u64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut v = values.to_vec();
        v.sort_unstable();
        let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
        Self {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().expect("non-empty"),
            mean: v.iter().sum::<u64>() as f64 / v.len() as f64,
        }
    }

    /// Max/mean ratio — 1.0 is perfect balance.
    ///
    /// A `mean` of zero can only arise from an all-zero (or empty)
    /// distribution, because the summarised values are unsigned; every
    /// core then carries the same load, so the ratio is *defined* as 1.0
    /// (perfect balance) rather than left to a 0/0. In particular an idle
    /// cluster and a uniformly loaded cluster report the same imbalance.
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

/// Query-phase report (drives Figures 3, 4, 5 and Tables III).
///
/// `PartialEq` compares every field — chaos tests assert that two runs
/// under the same fault seed produce *identical* reports.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReport {
    /// k-NN per query, global dataset row ids, ascending distance.
    pub results: Vec<Vec<Neighbor>>,
    /// Total virtual query time: master dispatch start → all results
    /// merged (ns). This is the paper's "total query time".
    pub total_ns: f64,
    /// Master time spent routing queries through the VP skeleton (ns).
    pub master_route_ns: f64,
    /// Master CPU spent on sends/receives/RMA (ns).
    pub master_comm_cpu_ns: f64,
    /// Master time blocked waiting for worker traffic (ns).
    pub master_wait_ns: f64,
    /// Queries dispatched to each processing core (paper Fig. 4(b)).
    pub per_core_queries: Vec<u64>,
    /// Probes dispatched per *partition* (retries included) — the hotness
    /// signal the serve-layer replication controller reads. Unlike
    /// `per_core_queries`, this is invariant under replica placement.
    pub per_partition_probes: Vec<u64>,
    /// Mean partitions searched per query (`|F(q)|`).
    pub mean_fanout: f64,
    /// Per-node virtual busy time of the search thread pools (ns).
    pub node_busy_ns: Vec<f64>,
    /// Per-node communication CPU (send/recv/RMA overheads), ns.
    pub node_comm_cpu_ns: Vec<f64>,
    /// Total distance evaluations across all local searches.
    pub total_ndist: u64,
    /// Total result bytes deposited/returned to the master.
    pub result_bytes: u64,
    /// Per-query degraded flag: `true` when at least one routed partition
    /// never answered (within the retry budget) and the result is a
    /// partial top-k. Always all-`false` on the fault-free paths.
    pub degraded: Vec<bool>,
    /// Per-query count of routed partitions that never answered.
    pub missing_partitions: Vec<u32>,
    /// Partition probes re-dispatched after a virtual-time timeout
    /// (fault-tolerant path only).
    pub retries: u64,
    /// Retries that failed over to a *different* replica core (a subset of
    /// `retries`; zero when `replication == 1`).
    pub failovers: u64,
}

impl QueryReport {
    /// Queries per second of virtual time (the paper's throughput metric).
    pub fn throughput_qps(&self) -> f64 {
        if self.total_ns <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / (self.total_ns / 1e9)
        }
    }

    /// Distribution of queries over cores (Fig. 4(b)).
    pub fn query_distribution(&self) -> Distribution {
        Distribution::of(&self.per_core_queries)
    }

    /// `true` when any query returned a partial (degraded) result.
    pub fn any_degraded(&self) -> bool {
        self.degraded.iter().any(|&d| d)
    }

    /// Number of degraded queries.
    pub fn degraded_count(&self) -> usize {
        self.degraded.iter().filter(|&&d| d).count()
    }

    /// Fraction of the run's aggregate core-time spent computing, vs
    /// communication CPU, vs idle — the paper's Figure 5 breakdown. The
    /// denominator is `(P cores + 1 master) × total time`.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let span = self.total_ns.max(1.0);
        let n_cores = self.per_core_queries.len().max(1) as f64;
        let capacity = span * n_cores + span; // worker cores + master
        let compute: f64 = self.node_busy_ns.iter().sum::<f64>() + self.master_route_ns;
        let comm: f64 = self.node_comm_cpu_ns.iter().sum::<f64>()
            + self.master_comm_cpu_ns
            + self.master_wait_ns;
        let compute_frac = (compute / capacity).min(1.0);
        let comm_frac = (comm / capacity).min(1.0 - compute_frac);
        let idle = (1.0 - compute_frac - comm_frac).max(0.0);
        (compute_frac, comm_frac, idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_of_constant_is_tight() {
        let d = Distribution::of(&[5, 5, 5, 5]);
        assert_eq!(d.min, 5);
        assert_eq!(d.max, 5);
        assert_eq!(d.median, 5);
        assert_eq!(d.mean, 5.0);
        assert_eq!(d.imbalance(), 1.0);
    }

    #[test]
    fn distribution_quartiles_ordered() {
        let vals: Vec<u64> = (0..101).collect();
        let d = Distribution::of(&vals);
        assert_eq!(d.min, 0);
        assert_eq!(d.median, 50);
        assert_eq!(d.max, 100);
        assert!(d.q1 <= d.median && d.median <= d.q3);
    }

    #[test]
    fn distribution_empty_is_zero() {
        let d = Distribution::of(&[]);
        assert_eq!(d, Distribution::default());
    }

    #[test]
    fn imbalance_detects_skew() {
        let balanced = Distribution::of(&[10, 10, 10, 10]);
        let skewed = Distribution::of(&[0, 0, 0, 40]);
        assert!(skewed.imbalance() > balanced.imbalance());
    }

    #[test]
    fn imbalance_of_zero_mean_is_perfect_balance() {
        // all-zero and empty distributions are uniform by definition;
        // the documented convention pins them to exactly 1.0, the same
        // value a uniformly busy cluster reports
        assert_eq!(Distribution::of(&[0, 0, 0]).imbalance(), 1.0);
        assert_eq!(Distribution::of(&[]).imbalance(), 1.0);
        assert_eq!(Distribution::of(&[7, 7]).imbalance(), 1.0);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let r = QueryReport {
            results: vec![vec![]; 10],
            total_ns: 1000.0,
            master_route_ns: 100.0,
            master_comm_cpu_ns: 50.0,
            master_wait_ns: 200.0,
            per_core_queries: vec![5, 5],
            per_partition_probes: vec![5, 5],
            mean_fanout: 1.0,
            node_busy_ns: vec![800.0, 400.0],
            node_comm_cpu_ns: vec![50.0, 20.0],
            total_ndist: 100,
            result_bytes: 10,
            degraded: vec![false; 10],
            missing_partitions: vec![0; 10],
            retries: 0,
            failovers: 0,
        };
        let (c, m, i) = r.breakdown();
        assert!((c + m + i - 1.0).abs() < 1e-9);
        assert!(c > 0.0 && m > 0.0 && i >= 0.0);
    }

    #[test]
    fn throughput_computed() {
        let r = QueryReport {
            results: vec![vec![]; 100],
            total_ns: 1e9, // one virtual second
            master_route_ns: 0.0,
            master_comm_cpu_ns: 0.0,
            master_wait_ns: 0.0,
            per_core_queries: vec![],
            per_partition_probes: vec![],
            mean_fanout: 1.0,
            node_busy_ns: vec![],
            node_comm_cpu_ns: vec![],
            total_ndist: 0,
            result_bytes: 0,
            degraded: vec![false; 100],
            missing_partitions: vec![0; 100],
            retries: 0,
            failovers: 0,
        };
        assert_eq!(r.throughput_qps(), 100.0);
        assert!(!r.any_degraded());
        assert_eq!(r.degraded_count(), 0);
    }
}
