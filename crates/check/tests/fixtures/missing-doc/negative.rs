/// A placement plan.
pub struct Plan {
    pub shards: usize,
}

/** Executes the plan (block-doc form also counts). */
#[inline]
#[allow(
    clippy::needless_lifetimes,
    clippy::missing_const_for_fn
)]
pub fn execute(p: &Plan) -> usize {
    p.shards
}

pub(crate) fn internal() -> usize {
    0
}

pub use std::collections::BTreeMap;
