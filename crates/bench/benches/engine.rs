//! End-to-end engine benchmarks (host wall time of the simulated runs):
//! one-sided vs two-sided transports, replication factors, and the
//! multiple-owner strategy on one prebuilt index.

use criterion::{criterion_group, criterion_main, Criterion};
use fastann_core::{
    search_batch_multi_owner, DistIndex, EngineConfig, RoutingPolicy, SearchOptions, SearchRequest,
};
use fastann_data::synth;
use fastann_hnsw::HnswConfig;

fn bench_engine(c: &mut Criterion) {
    let data = synth::sift_like(8_000, 64, 11);
    let queries = synth::queries_near(&data, 100, 0.02, 12);
    let cfg = EngineConfig::new(16, 4)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40))
        .with_seed(11);
    let index = DistIndex::build(&data, cfg);

    let mut group = c.benchmark_group("engine_16c_8k_points_100q");
    group.sample_size(10);
    group.bench_function("one_sided", |b| {
        b.iter(|| {
            SearchRequest::new(&index, &queries)
                .opts(SearchOptions::new(10).with_one_sided(true))
                .run()
        })
    });
    group.bench_function("two_sided", |b| {
        b.iter(|| {
            SearchRequest::new(&index, &queries)
                .opts(SearchOptions::new(10).with_one_sided(false))
                .run()
        })
    });
    group.bench_function("replicated_r3", |b| {
        b.iter(|| {
            SearchRequest::new(&index, &queries)
                .opts(SearchOptions::new(10).with_routing(RoutingPolicy::Static(3)))
                .run()
        })
    });
    group.bench_function("multi_owner", |b| {
        b.iter(|| search_batch_multi_owner(&index, &queries, &SearchOptions::new(10)))
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let data = synth::sift_like(8_000, 64, 13);
    let mut group = c.benchmark_group("dist_build_8k_points");
    group.sample_size(10);
    group.bench_function("16_cores", |b| {
        b.iter(|| {
            let cfg = EngineConfig::new(16, 4)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40))
                .with_seed(13);
            DistIndex::build(&data, cfg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_build);
criterion_main!(benches);
