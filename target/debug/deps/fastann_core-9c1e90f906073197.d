/root/repo/target/debug/deps/fastann_core-9c1e90f906073197.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/local.rs crates/core/src/owner.rs crates/core/src/persist.rs crates/core/src/router.rs crates/core/src/stats.rs crates/core/src/tune.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_core-9c1e90f906073197.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/local.rs crates/core/src/owner.rs crates/core/src/persist.rs crates/core/src/router.rs crates/core/src/stats.rs crates/core/src/tune.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/local.rs:
crates/core/src/owner.rs:
crates/core/src/persist.rs:
crates/core/src/router.rs:
crates/core/src/stats.rs:
crates/core/src/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
