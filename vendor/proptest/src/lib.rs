//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic property-testing harness with the API subset it
//! uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prelude::ProptestConfig`] and strategies for numeric ranges, tuples
//! and [`collection::vec`]. Differences from upstream, deliberately chosen
//! for a hermetic test suite:
//!
//! * **fully deterministic** — case `i` of test `t` always sees the same
//!   inputs (seeded from a hash of the test path and `i`); there is no
//!   persistence file and no flaky regression corpus;
//! * **boundary cases first** — case 0 generates every strategy's minimum
//!   and case 1 its maximum, so range endpoints are always exercised;
//! * **no shrinking** — failures report the generated inputs via panic
//!   message instead of minimising them.

/// How a [`Gen`] resolves strategy choices for the current case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Every strategy yields its minimum value.
    Min,
    /// Every strategy yields its maximum value.
    Max,
    /// Pseudo-random values from the per-case stream.
    Random,
}

/// Deterministic per-case value source handed to strategies.
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
    mode: Mode,
}

impl Gen {
    /// Source for case `case` of the named test: case 0 is all-minimums,
    /// case 1 all-maximums, later cases pseudo-random.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mode = match case {
            0 => Mode::Min,
            1 => Mode::Max,
            _ => Mode::Random,
        };
        Self { state: h, mode }
    }

    /// Next 64 pseudo-random bits (SplitMix64).
    pub fn bits(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`; pinned to `0` / `~1` in min/max mode.
    pub fn unit(&mut self) -> f64 {
        match self.mode {
            Mode::Min => 0.0,
            Mode::Max => 1.0 - 1.0 / (1u64 << 32) as f64,
            Mode::Random => (self.bits() >> 11) as f64 / (1u64 << 53) as f64,
        }
    }

    /// Uniform integer in `[lo, hi)` as `u128` arithmetic on the caller.
    fn index(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        match self.mode {
            Mode::Min => 0,
            Mode::Max => span - 1,
            Mode::Random => self.bits() % span,
        }
    }
}

/// Value generators (subset of `proptest::strategy::Strategy`).
pub mod strategy {
    use super::Gen;

    /// A source of deterministic test values.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Produces this case's value.
        fn generate(&self, g: &mut Gen) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, g: &mut Gen) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + g.index(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, g: &mut Gen) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + g.unit() as f32 * (self.end - self.start);
            // rounding can land exactly on the exclusive end; pull it back in
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, g: &mut Gen) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + g.unit() * (self.end - self.start);
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    /// A strategy yielding one fixed value (subset of `proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _g: &mut Gen) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident: $idx:tt),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                fn generate(&self, g: &mut Gen) -> Self::Value {
                    ($(self.$idx.generate(g),)*)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::Gen;

    /// Strategy for `Vec<T>` with element strategy `S` and a length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = self.len.clone().generate(g);
            (0..n).map(|_| self.element.generate(g)).collect()
        }
    }
}

/// Test-runner configuration (subset of `proptest::test_runner`).
pub mod test_runner {
    /// How many cases each property runs (subset of
    /// `proptest::test_runner::Config`).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the hermetic suite quick
            // while still covering min, max and 62 random cases.
            Self { cases: 64 }
        }
    }
}

/// The names call sites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..config.cases as u64 {
                    let mut __gen = $crate::Gen::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __gen);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds (panics with the condition on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::Gen::for_case("t", 5);
        let mut b = crate::Gen::for_case("t", 5);
        for _ in 0..32 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn case_zero_is_minimum_case_one_is_maximum() {
        let mut g0 = crate::Gen::for_case("x", 0);
        let v0 = Strategy::generate(&(3u32..17), &mut g0);
        assert_eq!(v0, 3);
        let mut g1 = crate::Gen::for_case("x", 1);
        let v1 = Strategy::generate(&(3u32..17), &mut g1);
        assert_eq!(v1, 16);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        for case in 0..40u64 {
            let mut g = crate::Gen::for_case("v", case);
            let v = Strategy::generate(&collection::vec(0f32..1.0, 2..9), &mut g);
            assert!((2..9).contains(&v.len()), "bad length {}", v.len());
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_in_range(x in 5u64..50, f in -1.0f32..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn macro_tuples_and_vecs(pairs in collection::vec((0u32..9, 0.0f64..2.0), 1..20)) {
            prop_assert!(!pairs.is_empty());
            for (a, b) in &pairs {
                prop_assert!(*a < 9);
                prop_assert!((0.0..2.0).contains(b));
            }
        }
    }
}
