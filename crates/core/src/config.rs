//! Engine configuration.

use fastann_data::Distance;
use fastann_hnsw::HnswConfig;
use fastann_mpisim::{CostModel, NetModel};
use fastann_vptree::RouteConfig;

use crate::local::LocalIndexKind;
use crate::routing::RoutingPolicy;

/// Static configuration of a distributed index: cluster shape, metric,
/// HNSW parameters and query-routing policy.
///
/// `#[non_exhaustive]`: construct with [`EngineConfig::new`] (or
/// `default()`) and refine with the `with_*` setters — new knobs may be
/// added without breaking callers.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Total processing cores `P` = number of data partitions (power of
    /// two, the paper's Section IV mapping "one partition per core").
    pub n_cores: usize,
    /// Cores per compute node (`T` OpenMP threads per worker process). The
    /// paper's Cray XC40 nodes have 24; `n_cores` must be divisible by it.
    pub cores_per_node: usize,
    /// Metric (the paper evaluates with L2).
    pub metric: Distance,
    /// Per-partition HNSW construction parameters (used when
    /// `local_index` is [`LocalIndexKind::Hnsw`]).
    pub hnsw: HnswConfig,
    /// Which index structure serves each partition (paper Section VI:
    /// "any algorithm can be used for local indexing … instead of HNSW").
    pub local_index: LocalIndexKind,
    /// Query-routing policy (`F(q)` margin and partition budget).
    pub route: RouteConfig,
    /// Simulated interconnect.
    pub net: NetModel,
    /// Compute pricing for the virtual clocks.
    pub cost: CostModel,
    /// RNG seed for construction.
    pub seed: u64,
    /// Real OS threads each simulated node may use for local work — the
    /// wall-clock analogue of the paper's OpenMP threads (the *virtual*
    /// `cores_per_node` clock model is unaffected). `1` (the default) keeps
    /// every code path sequential; larger values parallelise per-partition
    /// index construction and batched worker-side search on the vendored
    /// rayon pool. All reported results and virtual-time numbers are
    /// bit-identical across `threads` settings; only wall-clock speed
    /// changes.
    pub threads: usize,
}

impl Default for EngineConfig {
    /// A small default cluster: 8 cores grouped 2 to a node.
    fn default() -> Self {
        Self::new(8, 2)
    }
}

impl EngineConfig {
    /// Configuration for `n_cores` total cores grouped `cores_per_node` to
    /// a node, with paper-default parameters elsewhere.
    ///
    /// # Panics
    /// Panics unless `n_cores` is a power of two divisible by
    /// `cores_per_node`.
    pub fn new(n_cores: usize, cores_per_node: usize) -> Self {
        assert!(
            n_cores.is_power_of_two(),
            "core count must be a power of two"
        );
        assert!(
            cores_per_node >= 1 && n_cores.is_multiple_of(cores_per_node),
            "cores ({n_cores}) must divide evenly into nodes of {cores_per_node}"
        );
        Self {
            n_cores,
            cores_per_node,
            metric: Distance::L2,
            hnsw: HnswConfig::default(),
            local_index: LocalIndexKind::Hnsw,
            route: RouteConfig::default(),
            net: NetModel::default(),
            cost: CostModel::default(),
            seed: 0,
            threads: 1,
        }
    }

    /// Number of worker compute nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_cores / self.cores_per_node
    }

    /// Sets the metric (builder style).
    pub fn with_metric(mut self, metric: Distance) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the HNSW parameters (builder style).
    pub fn with_hnsw(mut self, hnsw: HnswConfig) -> Self {
        self.hnsw = hnsw;
        self
    }

    /// Sets the per-partition index kind (builder style).
    pub fn with_local_index(mut self, kind: LocalIndexKind) -> Self {
        self.local_index = kind;
        self
    }

    /// Sets the routing policy (builder style).
    pub fn with_route(mut self, route: RouteConfig) -> Self {
        self.route = route;
        self
    }

    /// Sets the simulated interconnect (builder style).
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Sets the virtual-clock cost model (builder style).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the real OS thread count for local work (builder style).
    /// Clamped up to 1; see [`EngineConfig::threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Per-batch search options — the paper's optimisation knobs.
///
/// `#[non_exhaustive]`: construct with [`SearchOptions::new`] (or
/// `default()`) and refine with the `with_*` setters — new knobs may be
/// added without breaking callers.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SearchOptions {
    /// Neighbours per query (the paper uses k = 10 throughout).
    pub k: usize,
    /// HNSW beam width for the local searches.
    pub ef: usize,
    /// Use MPI one-sided result aggregation (Section IV-C1). When `false`,
    /// workers return results with two-sided messages the master must
    /// receive one by one.
    pub one_sided: bool,
    /// Replication and dispatch policy (Section IV-C2, generalised): how
    /// many replicas each partition's workgroup holds and how probes pick a
    /// workgroup slot. [`RoutingPolicy::Static`]`(r)` is the paper's
    /// Algorithm 5 (round-robin over `r` consecutive cores; `Static(1)`
    /// disables replication — the baseline);
    /// [`RoutingPolicy::PowerOfTwo`] adds load-aware slot choice and lets
    /// an adaptive controller raise hot partitions per batch through
    /// [`crate::SearchRequest::replicas`].
    pub routing: RoutingPolicy,
    /// Fault-tolerant path only ([`crate::SearchRequest::chaos`]): virtual
    /// time after dispatch before an unanswered partition probe is declared
    /// timed out and eligible for retry.
    pub timeout_ns: f64,
    /// Fault-tolerant path only: retry rounds per timed-out probe. Each
    /// retry targets the next replica in the partition's workgroup, so with
    /// `replication > 1` a retry is a failover to a different core. `0`
    /// disables retries (a lost probe degrades the query immediately).
    pub max_retries: usize,
    /// Seed for the schedule-perturbation race detector
    /// ([`fastann_mpisim::SchedPerturb`]): `0` (the default) runs the
    /// deterministic baseline schedule; any other value perturbs wildcard
    /// message matching, injects real-time stalls at receive boundaries and
    /// shuffles virtual-thread tie-breaks. A correct batch returns an
    /// identical [`crate::QueryReport`] for every seed — `fastann-check
    /// race` sweeps seeds and reports any divergence as a race.
    pub sched_seed: u64,
    /// Traverse each local HNSW with the SQ8 asymmetric distance and
    /// re-rank survivors at full precision (the default). Partitions
    /// without a trained quantizer (non-L2 metrics, stale grids) fall
    /// back to exact automatically; set `false` to force exact traversal
    /// everywhere.
    pub quantized: bool,
    /// Quantized-first re-rank pool multiplier: the first
    /// `rerank_factor * k` quantized beam survivors are re-scored with
    /// the exact metric before the top `k` are returned. Higher values
    /// buy back recall lost to quantization error at a small exact-eval
    /// cost; `3` recovers exact-level recall on the synthetic workloads.
    pub rerank_factor: usize,
    /// Width of the multi-entry descent beam in each local HNSW. `0` (the
    /// default) inherits the index's build-time `HnswConfig::entry_beam`;
    /// any other value overrides it per batch. `1` degenerates to the
    /// classic single-seed greedy descent (still seeded at layer 0 from
    /// the index's diverse entry set) — which collapses recall on
    /// clustered data; see DESIGN.md §13.
    pub entry_beam: usize,
}

impl Default for SearchOptions {
    /// The paper's `k = 10` with default knobs everywhere else.
    fn default() -> Self {
        Self::new(10)
    }
}

impl SearchOptions {
    /// Paper defaults: `ef = 4k`, one-sided on, no replication; fault
    /// tolerance tuned for the simulator's default cost model (10 ms
    /// virtual timeout, 2 retries).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            ef: (4 * k).max(32),
            one_sided: true,
            routing: RoutingPolicy::Static(1),
            timeout_ns: 1e7,
            max_retries: 2,
            sched_seed: 0,
            quantized: true,
            rerank_factor: 3,
            entry_beam: 0,
        }
    }

    /// Enables or disables quantized-first traversal (builder style).
    pub fn with_quantized(mut self, on: bool) -> Self {
        self.quantized = on;
        self
    }

    /// Sets the per-batch descent beam override (builder style); `0`
    /// restores "inherit the index configuration".
    pub fn with_entry_beam(mut self, beam: usize) -> Self {
        self.entry_beam = beam;
        self
    }

    /// Sets the re-rank pool multiplier (builder style).
    pub fn with_rerank_factor(mut self, f: usize) -> Self {
        assert!(f >= 1, "rerank factor must be at least 1");
        self.rerank_factor = f;
        self
    }

    /// Sets the routing/replication policy (builder style). Panics on an
    /// incoherent shape (zero replicas, `max < base`).
    pub fn with_routing(mut self, policy: RoutingPolicy) -> Self {
        policy.validate();
        self.routing = policy;
        self
    }

    /// Sets a uniform replication factor with round-robin dispatch
    /// (builder style). Shim over the unified routing knob — exactly
    /// `with_routing(RoutingPolicy::Static(r))`.
    #[deprecated(note = "use with_routing(RoutingPolicy::Static(r))")]
    pub fn with_replication(self, r: usize) -> Self {
        self.with_routing(RoutingPolicy::Static(r))
    }

    /// Sets one-sided aggregation on or off (builder style).
    pub fn with_one_sided(mut self, on: bool) -> Self {
        self.one_sided = on;
        self
    }

    /// Sets the neighbour count `k` (builder style). Does not touch `ef`
    /// — start from [`SearchOptions::new`] to derive `ef` from `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self
    }

    /// Sets the HNSW beam width (builder style).
    pub fn with_ef(mut self, ef: usize) -> Self {
        assert!(ef >= 1, "ef must be positive");
        self.ef = ef;
        self
    }

    /// Sets the fault-tolerant request timeout (builder style).
    pub fn with_timeout_ns(mut self, ns: f64) -> Self {
        assert!(ns > 0.0, "timeout must be positive");
        self.timeout_ns = ns;
        self
    }

    /// Sets the retry budget of the fault-tolerant path (builder style).
    pub fn with_max_retries(mut self, n: usize) -> Self {
        self.max_retries = n;
        self
    }

    /// Deadline propagation for online serving: clamps the per-probe
    /// timeout so it never exceeds `headroom_ns` (the tightest
    /// virtual-time budget any request in the batch has left at dispatch).
    /// A probe that cannot answer before the strictest deadline is then
    /// declared lost *within* that deadline, giving retries and failovers
    /// a chance to produce an answer the caller can still use.
    ///
    /// Non-finite or non-positive headroom (no deadline pressure, or a
    /// deadline already blown) leaves the timeout unchanged; the floor of
    /// 1 ns keeps the clamped value a valid timeout.
    pub fn cap_timeout_ns(mut self, headroom_ns: f64) -> Self {
        if headroom_ns.is_finite() && headroom_ns > 0.0 {
            self.timeout_ns = self.timeout_ns.min(headroom_ns.max(1.0));
        }
        self
    }

    /// Sets the schedule-perturbation seed (builder style); `0` disables.
    pub fn with_sched_seed(mut self, seed: u64) -> Self {
        self.sched_seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_derived_from_cores() {
        let c = EngineConfig::new(32, 8);
        assert_eq!(c.n_nodes(), 4);
        let c = EngineConfig::new(16, 1);
        assert_eq!(c.n_nodes(), 16);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_cores_rejected() {
        let _ = EngineConfig::new(24, 8);
    }

    #[test]
    #[should_panic]
    fn indivisible_node_size_rejected() {
        let _ = EngineConfig::new(16, 3);
    }

    #[test]
    fn threads_defaults_to_sequential_and_clamps() {
        let c = EngineConfig::new(8, 4);
        assert_eq!(c.threads, 1, "default must stay sequential");
        assert_eq!(c.with_threads(0).threads, 1, "0 clamps to 1");
        let c = EngineConfig::new(8, 4).with_threads(6);
        assert_eq!(c.threads, 6);
    }

    #[test]
    fn search_options_builders() {
        let o = SearchOptions::new(10)
            .with_routing(RoutingPolicy::Static(3))
            .with_one_sided(false)
            .with_ef(99);
        assert_eq!(o.k, 10);
        assert_eq!(o.routing, RoutingPolicy::Static(3));
        assert_eq!(o.routing.base_replicas(), 3);
        assert!(!o.one_sided);
        assert_eq!(o.ef, 99);
    }

    #[test]
    #[allow(deprecated)]
    fn replication_shim_maps_to_static_routing() {
        // the satellite contract: the deprecated setter is a one-line shim
        // over the unified knob, producing an identical options value
        let shimmed = SearchOptions::new(10).with_replication(3);
        let direct = SearchOptions::new(10).with_routing(RoutingPolicy::Static(3));
        assert_eq!(shimmed.routing, direct.routing);
        assert_eq!(shimmed.routing, RoutingPolicy::Static(3));
    }

    #[test]
    fn adaptive_routing_shape_is_kept() {
        let o = SearchOptions::new(10).with_routing(RoutingPolicy::PowerOfTwo { base: 1, max: 4 });
        assert!(o.routing.is_adaptive());
        assert_eq!(o.routing.base_replicas(), 1);
        assert_eq!(o.routing.max_replicas(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_replication_rejected() {
        let _ = SearchOptions::new(10).with_routing(RoutingPolicy::Static(0));
    }

    #[test]
    fn quantized_defaults_on_with_rerank_factor_three() {
        let o = SearchOptions::new(10);
        assert!(o.quantized, "quantized-first is the default traversal");
        assert_eq!(o.rerank_factor, 3);
        let o = o.with_quantized(false).with_rerank_factor(5);
        assert!(!o.quantized);
        assert_eq!(o.rerank_factor, 5);
    }

    #[test]
    #[should_panic]
    fn zero_rerank_factor_rejected() {
        let _ = SearchOptions::new(10).with_rerank_factor(0);
    }

    #[test]
    fn entry_beam_defaults_to_inherit() {
        let o = SearchOptions::new(10);
        assert_eq!(o.entry_beam, 0, "0 = inherit the index config");
        assert_eq!(o.with_entry_beam(6).entry_beam, 6);
        assert_eq!(
            o.with_entry_beam(6).with_entry_beam(0).entry_beam,
            0,
            "0 restores inheritance"
        );
    }

    #[test]
    fn cap_timeout_clamps_only_under_deadline_pressure() {
        let o = SearchOptions::new(10); // default timeout 1e7 ns
        assert_eq!(
            o.cap_timeout_ns(5e6).timeout_ns,
            5e6,
            "tight deadline clamps"
        );
        assert_eq!(
            o.cap_timeout_ns(5e9).timeout_ns,
            1e7,
            "loose deadline is a no-op"
        );
        assert_eq!(
            o.cap_timeout_ns(f64::INFINITY).timeout_ns,
            1e7,
            "no deadline"
        );
        assert_eq!(
            o.cap_timeout_ns(-3.0).timeout_ns,
            1e7,
            "blown deadline ignored"
        );
        assert_eq!(
            o.cap_timeout_ns(1e-9).timeout_ns,
            1.0,
            "floor keeps it valid"
        );
    }
}
