/root/repo/target/release/deps/fastann_mpisim-fe8b49db07d421a4.d: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs

/root/repo/target/release/deps/libfastann_mpisim-fe8b49db07d421a4.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs

/root/repo/target/release/deps/libfastann_mpisim-fe8b49db07d421a4.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/cluster.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/cost.rs:
crates/mpisim/src/fault.rs:
crates/mpisim/src/net.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/rma.rs:
crates/mpisim/src/trace.rs:
crates/mpisim/src/vthreads.rs:
crates/mpisim/src/wire.rs:
