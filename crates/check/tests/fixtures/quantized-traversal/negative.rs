fn greedy_step(q: &QueryDist, cand: &[u32]) -> f32 {
    // squared_l2(a, b) is exactly what the quantized path replaces
    let mut best = f32::INFINITY;
    for &c in cand {
        let d = q.dist(c);
        if d < best {
            best = d;
        }
    }
    best
}

fn outside_traversal(m: &Metric, q: &QueryDist) -> f32 {
    // .eval( is only banned inside the traversal fn bodies
    m.eval(q, 0)
}
