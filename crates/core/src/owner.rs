//! Multiple-owner strategy — the variant discussed in the paper's
//! Section IV: instead of one master, the VP-tree skeleton is replicated on
//! every node and each query is *owned* by the node selected by a hash
//! (`qid mod N`). Owners route their own queries, target nodes answer, and
//! results are merged at the owners, then gathered.
//!
//! The paper found this "a small improvement … over an optimized
//! master-worker strategy but this improvement deteriorated as core count
//! increased", because the decentralised dispatch cannot do replication-
//! based load balancing. The `repro ablation-owner` experiment reproduces
//! that comparison.

use bytes::BytesMut;
use fastann_data::{Neighbor, TopK, VectorSet};
use fastann_hnsw::SearchScratch;
use fastann_mpisim::{
    wire, Cluster, Rank, ReduceOp, SchedPerturb, SimConfig, Topology, VThreadPool,
};

use crate::build::DistIndex;
use crate::config::SearchOptions;
use crate::engine::MERGE_NS_PER_NEIGHBOR;
use crate::stats::QueryReport;

const TAG_QUERY: u64 = 301;
const TAG_RESULT: u64 = 302;
const TAG_COUNT: u64 = 303;

/// Runs a batch with the multiple-owner strategy (no master rank, no
/// replication, two-sided result returns to the owners).
///
/// # Panics
/// Panics on dimension mismatch or empty query set.
pub fn search_batch_multi_owner(
    index: &DistIndex,
    queries: &VectorSet,
    opts: &SearchOptions,
) -> QueryReport {
    assert!(!queries.is_empty(), "empty query batch");
    assert_eq!(queries.dim(), index.dim(), "query dimension mismatch");
    let n_nodes = index.config.n_nodes();
    let sim = SimConfig::new(n_nodes)
        .topology(Topology::one_rank_per_node())
        .net(index.config.net)
        .cost(index.config.cost)
        .sched(SchedPerturb::seeded(opts.sched_seed));
    let cluster = Cluster::new(sim);

    let (outs, conservation) = cluster.run_checked(|rank| node_main(rank, index, queries, opts));
    if cfg!(debug_assertions) {
        conservation.assert_clean();
    }

    // Node 0 gathered the merged results.
    let mut results: Vec<Vec<Neighbor>> = Vec::new();
    let mut per_core = vec![0u64; index.config.n_cores];
    let mut per_part = vec![0u64; index.n_partitions()];
    let mut node_busy = vec![0f64; n_nodes];
    let mut node_comm = vec![0f64; n_nodes];
    let mut total_ndist = 0u64;
    let mut total_ns = 0f64;
    let mut route_ns = 0f64;
    let mut fanout = 0u64;
    let mut result_bytes = 0u64;
    let mut wait0 = 0f64;
    let mut comm0 = 0f64;
    for out in outs {
        if let Some(r) = out.results {
            results = r;
        }
        for (c, n) in out.per_core_queries.iter().enumerate() {
            per_core[c] += n;
        }
        for (p, n) in out.per_partition_probes.iter().enumerate() {
            per_part[p] += n;
        }
        node_busy[out.node] = out.busy_ns;
        node_comm[out.node] = out.comm_cpu_ns;
        total_ndist += out.ndist;
        total_ns = total_ns.max(out.end_ns);
        route_ns += out.route_ns;
        fanout += out.fanout;
        result_bytes += out.result_bytes;
        if out.node == 0 {
            wait0 = out.wait_ns;
            comm0 = out.comm_cpu_ns;
        }
    }
    QueryReport {
        results,
        total_ns,
        master_route_ns: route_ns,
        master_comm_cpu_ns: comm0,
        master_wait_ns: wait0,
        per_core_queries: per_core,
        per_partition_probes: per_part,
        mean_fanout: fanout as f64 / queries.len() as f64,
        node_busy_ns: node_busy,
        node_comm_cpu_ns: node_comm,
        total_ndist,
        result_bytes,
        degraded: vec![false; queries.len()],
        missing_partitions: vec![0; queries.len()],
        retries: 0,
        failovers: 0,
    }
}

struct NodeOut {
    node: usize,
    results: Option<Vec<Vec<Neighbor>>>,
    per_core_queries: Vec<u64>,
    per_partition_probes: Vec<u64>,
    busy_ns: f64,
    comm_cpu_ns: f64,
    wait_ns: f64,
    ndist: u64,
    end_ns: f64,
    route_ns: f64,
    fanout: u64,
    result_bytes: u64,
}

fn node_main(
    rank: &mut Rank,
    index: &DistIndex,
    queries: &VectorSet,
    opts: &SearchOptions,
) -> NodeOut {
    let world = rank.world();
    let me = rank.rank();
    let n_nodes = world.size();
    let t_cores = index.config.cores_per_node;
    let p_cores = index.config.n_cores;
    let k = opts.k;
    let dim = index.dim();
    let nq = queries.len();
    let route_cost = index.config.cost.dist_ns(dim);

    let owned: Vec<usize> = (0..nq).filter(|qi| qi % n_nodes == me).collect();
    let mut tops: std::collections::HashMap<usize, TopK> =
        owned.iter().map(|&qi| (qi, TopK::new(k))).collect();
    let mut per_core_queries = vec![0u64; p_cores];
    let mut per_partition_probes = vec![0u64; index.n_partitions()];
    let mut route_ns = 0f64;
    let mut fanout = 0u64;
    let mut pool = VThreadPool::new(t_cores, 0.0);
    pool.set_perturb(rank.sched_perturb());
    let mut scratch = SearchScratch::default();
    let mut ndist_total = 0u64;
    let mut sent_to = vec![0u64; n_nodes];
    let mut result_bytes = 0u64;

    // Local query processing shared by the dispatch and serve paths.
    let process = |rank: &mut Rank,
                   pool: &mut VThreadPool,
                   scratch: &mut SearchScratch,
                   ndist_total: &mut u64,
                   qid: usize,
                   part: usize,
                   q: &[f32],
                   ready: f64|
     -> (Vec<(u32, f32)>, f64) {
        let partition = &index.partitions[part];
        let (local, sstats) = partition.index.search_detailed_opts(q, opts, scratch);
        let ndist = sstats.ndist;
        *ndist_total += ndist;
        let cost = index.config.cost.dists_ns(ndist, dim);
        let done_at = pool.assign(ready, cost);
        let pairs: Vec<(u32, f32)> = local
            .iter()
            .map(|n| (partition.global_ids[n.id as usize], n.dist))
            .collect();
        let _ = qid;
        let _ = rank;
        (pairs, done_at)
    };

    // --- dispatch my owned queries ---
    for &qi in &owned {
        let q = queries.get(qi);
        let (parts, ndist) = index.router.route(q, &index.config.route);
        let c = ndist as f64 * route_cost;
        rank.charge(c);
        route_ns += c;
        fanout += parts.len() as u64;
        for d in parts {
            // No replication in this strategy; split-created partitions
            // (id ≥ core count) wrap onto existing cores.
            let core = d as usize % p_cores;
            per_core_queries[core] += 1;
            per_partition_probes[d as usize] += 1;
            let target = core / t_cores;
            if target == me {
                // local work: no message, process straight away
                let (pairs, _done) = process(
                    rank,
                    &mut pool,
                    &mut scratch,
                    &mut ndist_total,
                    qi,
                    d as usize,
                    q,
                    rank.now(),
                );
                rank.charge(pairs.len() as f64 * MERGE_NS_PER_NEIGHBOR);
                let top = tops.get_mut(&qi).expect("owned query");
                for (id, dist) in pairs {
                    top.push(Neighbor::new(id, dist));
                }
            } else {
                let mut b = BytesMut::new();
                wire::put_u32(&mut b, qi as u32);
                wire::put_u32(&mut b, d);
                wire::put_f32_slice(&mut b, q);
                rank.send_bytes(target, TAG_QUERY, b.freeze());
                sent_to[target] += 1;
            }
        }
    }
    // tell every other node how much work to expect from me
    for (j, &count) in sent_to.iter().enumerate() {
        if j != me {
            let mut b = BytesMut::with_capacity(8);
            wire::put_u64(&mut b, count);
            rank.send_bytes(j, TAG_COUNT, b.freeze());
        }
    }

    // --- serve + merge, three deterministic phases ---
    //
    // An earlier version of this loop was a single `rank.recv(None, None)`
    // wildcard dispatch — the exact PR 1 bug class: folding arrivals into
    // the virtual clock in whatever order the OS scheduler enqueued them
    // made the report's timing fields differ from run to run (the
    // schedule-perturbation race detector flags it in one sweep). Draining
    // per source in rank order with exact tags is schedule-independent.
    //
    // Deadlock-free by construction: every node posts *all* its dispatch
    // sends (queries, then counts) before its first receive, sends are
    // non-blocking, and each phase only consumes messages already posted —
    // counts and queries during dispatch, results during phase B.

    // Phase A: how many queries does each peer owe me?
    let mut expected_from = vec![0u64; n_nodes];
    for (j, slot) in expected_from.iter_mut().enumerate() {
        if j != me {
            let msg = rank.recv(Some(j), Some(TAG_COUNT));
            let mut p = msg.payload;
            *slot = wire::get_u64(&mut p);
        }
    }

    // Phase B: serve every peer's queries, in rank order.
    for (j, &owed) in expected_from.iter().enumerate() {
        for _ in 0..owed {
            let msg = rank.recv(Some(j), Some(TAG_QUERY));
            let arrival = msg.arrival;
            let mut p = msg.payload;
            let qid = wire::get_u32(&mut p) as usize;
            let part = wire::get_u32(&mut p) as usize;
            let q = wire::get_f32_vec(&mut p);
            let (pairs, done_at) = process(
                rank,
                &mut pool,
                &mut scratch,
                &mut ndist_total,
                qid,
                part,
                &q,
                arrival,
            );
            let owner = qid % n_nodes;
            let mut b = BytesMut::new();
            wire::put_u32(&mut b, qid as u32);
            wire::put_neighbors(&mut b, &pairs);
            rank.send_bytes_at(owner, TAG_RESULT, b.freeze(), done_at);
        }
    }

    // Phase C: merge the answers to my own queries, in rank order.
    for (j, &sent) in sent_to.iter().enumerate() {
        for _ in 0..sent {
            let msg = rank.recv(Some(j), Some(TAG_RESULT));
            let mut p = msg.payload;
            result_bytes += p.len() as u64;
            let qid = wire::get_u32(&mut p) as usize;
            let pairs = wire::get_neighbors(&mut p);
            rank.charge(pairs.len() as f64 * MERGE_NS_PER_NEIGHBOR);
            let top = tops.get_mut(&qid).expect("result for unowned query");
            for (id, d) in pairs {
                top.push(Neighbor::new(id, d));
            }
        }
    }

    // --- gather owned results at node 0 ---
    let mut b = BytesMut::new();
    wire::put_u32(&mut b, owned.len() as u32);
    for &qi in &owned {
        wire::put_u32(&mut b, qi as u32);
        let pairs: Vec<(u32, f32)> = tops[&qi]
            .to_sorted()
            .iter()
            .map(|n| (n.id, n.dist))
            .collect();
        wire::put_neighbors(&mut b, &pairs);
    }
    let gathered = world.gather(rank, 0, b.freeze());
    let results = gathered.map(|parts| {
        let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];
        for mut part in parts {
            let n = wire::get_u32(&mut part) as usize;
            for _ in 0..n {
                let qi = wire::get_u32(&mut part) as usize;
                out[qi] = wire::get_neighbors(&mut part)
                    .into_iter()
                    .map(|(id, d)| Neighbor::new(id, d))
                    .collect();
            }
        }
        out
    });

    let end_ns = world.allreduce_f64(rank, rank.now().max(pool.makespan()), ReduceOp::Max);
    let stats = rank.stats();
    NodeOut {
        node: me,
        results,
        per_core_queries,
        per_partition_probes,
        busy_ns: pool.busy(),
        comm_cpu_ns: stats.send_cpu_ns + stats.recv_cpu_ns + stats.rma_cpu_ns,
        wait_ns: stats.wait_ns,
        ndist: ndist_total,
        end_ns,
        route_ns,
        fanout,
        result_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::request::SearchRequest;
    use fastann_data::{ground_truth, synth, Distance};
    use fastann_hnsw::HnswConfig;

    fn build_small(n: usize, cores: usize, per_node: usize, seed: u64) -> (VectorSet, DistIndex) {
        let data = synth::sift_like(n, 16, seed);
        let cfg = EngineConfig::new(cores, per_node)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
            .with_seed(seed);
        let index = DistIndex::build(&data, cfg);
        (data, index)
    }

    #[test]
    fn multi_owner_matches_master_worker_results() {
        let (data, index) = build_small(2000, 8, 2, 31);
        let queries = synth::queries_near(&data, 17, 0.02, 32);
        let mw = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(10))
            .run();
        let mo = search_batch_multi_owner(&index, &queries, &SearchOptions::new(10));
        assert_eq!(mw.results, mo.results, "strategies must agree on content");
    }

    #[test]
    fn multi_owner_recall_reasonable() {
        let (data, index) = build_small(3000, 8, 2, 33);
        let queries = synth::queries_near(&data, 20, 0.02, 34);
        let mut o = SearchOptions::new(10);
        o.ef = 128;
        let r = search_batch_multi_owner(&index, &queries, &o);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let rec = ground_truth::recall_at_k(&r.results, &gt, 10);
        assert!(rec.mean > 0.6, "recall {}", rec.mean);
    }

    #[test]
    fn every_query_gets_results() {
        let (data, index) = build_small(1500, 4, 2, 35);
        let queries = synth::queries_near(&data, 23, 0.05, 36);
        let r = search_batch_multi_owner(&index, &queries, &SearchOptions::new(5));
        assert_eq!(r.results.len(), 23);
        assert!(r.results.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn accounting_populated() {
        let (data, index) = build_small(1500, 8, 4, 37);
        let queries = synth::queries_near(&data, 12, 0.05, 38);
        let r = search_batch_multi_owner(&index, &queries, &SearchOptions::new(5));
        assert!(r.total_ns > 0.0);
        assert!(r.mean_fanout >= 1.0);
        assert!(r.total_ndist > 0);
        let dispatched: u64 = r.per_core_queries.iter().sum();
        assert_eq!(dispatched as f64, r.mean_fanout * 12.0);
    }

    #[test]
    fn perturbed_schedule_is_result_neutral() {
        // regression for the wildcard-receive race this loop used to have:
        // the per-source three-phase drain must make the whole report —
        // virtual times included — independent of the perturbation seed
        let (data, index) = build_small(1500, 8, 2, 41);
        let queries = synth::queries_near(&data, 13, 0.03, 42);
        let base = search_batch_multi_owner(&index, &queries, &SearchOptions::new(5));
        for seed in [1u64, 9, 0xFEED] {
            let r = search_batch_multi_owner(
                &index,
                &queries,
                &SearchOptions::new(5).with_sched_seed(seed),
            );
            assert_eq!(base, r, "seed {seed} diverged");
        }
    }

    #[test]
    fn single_node_multi_owner() {
        let (data, index) = build_small(800, 4, 4, 39);
        let queries = synth::queries_near(&data, 9, 0.05, 40);
        let r = search_batch_multi_owner(&index, &queries, &SearchOptions::new(5));
        assert_eq!(r.results.len(), 9);
    }
}
