fn total(xs: &[f32]) -> f32 {
    xs.par_iter().map(|x| x * x).sum::<f32>()
}

fn accumulate(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    xs.par_iter().for_each(|x| {
        acc += x;
    });
    acc
}
