/root/repo/target/release/deps/fastann_kdtree-bbd8c09c88666594.d: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

/root/repo/target/release/deps/libfastann_kdtree-bbd8c09c88666594.rlib: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

/root/repo/target/release/deps/libfastann_kdtree-bbd8c09c88666594.rmeta: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

crates/kdtree/src/lib.rs:
crates/kdtree/src/dist.rs:
crates/kdtree/src/local.rs:
crates/kdtree/src/skeleton.rs:
