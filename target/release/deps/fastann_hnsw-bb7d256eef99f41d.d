/root/repo/target/release/deps/fastann_hnsw-bb7d256eef99f41d.d: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

/root/repo/target/release/deps/libfastann_hnsw-bb7d256eef99f41d.rlib: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

/root/repo/target/release/deps/libfastann_hnsw-bb7d256eef99f41d.rmeta: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

crates/hnsw/src/lib.rs:
crates/hnsw/src/config.rs:
crates/hnsw/src/graph.rs:
crates/hnsw/src/index.rs:
crates/hnsw/src/scratch.rs:
crates/hnsw/src/select.rs:
crates/hnsw/src/serialize.rs:
