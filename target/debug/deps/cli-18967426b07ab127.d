/root/repo/target/debug/deps/cli-18967426b07ab127.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-18967426b07ab127.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_fastann=placeholder:fastann
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
