/root/repo/target/debug/deps/indexes-aeff77c7dd9902c6.d: crates/bench/benches/indexes.rs Cargo.toml

/root/repo/target/debug/deps/libindexes-aeff77c7dd9902c6.rmeta: crates/bench/benches/indexes.rs Cargo.toml

crates/bench/benches/indexes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
