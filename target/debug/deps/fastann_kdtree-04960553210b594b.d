/root/repo/target/debug/deps/fastann_kdtree-04960553210b594b.d: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

/root/repo/target/debug/deps/libfastann_kdtree-04960553210b594b.rlib: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

/root/repo/target/debug/deps/libfastann_kdtree-04960553210b594b.rmeta: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

crates/kdtree/src/lib.rs:
crates/kdtree/src/dist.rs:
crates/kdtree/src/local.rs:
crates/kdtree/src/skeleton.rs:
