//! The Section VI extension point: swapping the per-partition index.

use fastann::core::{DistIndex, EngineConfig, LocalIndexKind, SearchOptions, SearchRequest};
use fastann::data::{ground_truth, synth, Distance};
use fastann::hnsw::HnswConfig;
use fastann::vptree::RouteConfig;

fn cfg(kind: LocalIndexKind, seed: u64) -> EngineConfig {
    EngineConfig::new(8, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
        .with_local_index(kind)
        .with_seed(seed)
}

#[test]
fn engine_runs_with_every_local_index_kind() {
    let data = synth::sift_like(3_000, 16, 401);
    let queries = synth::queries_near(&data, 20, 0.02, 402);
    for kind in [
        LocalIndexKind::Hnsw,
        LocalIndexKind::VpExact,
        LocalIndexKind::BruteForce,
    ] {
        let index = DistIndex::build(&data, cfg(kind, 401));
        let report = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(10))
            .run();
        assert_eq!(report.results.len(), 20, "{kind:?}");
        assert!(report.results.iter().all(|r| r.len() == 10), "{kind:?}");
        assert!(report.total_ndist > 0, "{kind:?}");
    }
}

#[test]
fn exact_local_kinds_agree_and_beat_hnsw_recall() {
    let data = synth::sift_like(4_000, 16, 403);
    let queries = synth::queries_near(&data, 30, 0.02, 404);
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);

    let recall_of = |kind: LocalIndexKind| {
        let index = DistIndex::build(&data, cfg(kind, 403));
        let report = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(10).with_ef(24))
            .run();
        (
            ground_truth::recall_at_k(&report.results, &gt, 10).mean,
            report.results,
        )
    };
    let (r_vp, res_vp) = recall_of(LocalIndexKind::VpExact);
    let (r_bf, res_bf) = recall_of(LocalIndexKind::BruteForce);
    let (r_hnsw, _) = recall_of(LocalIndexKind::Hnsw);
    assert_eq!(res_vp, res_bf, "two exact local indexes must agree exactly");
    assert!(
        r_vp >= r_hnsw - 1e-9,
        "exact local search cannot lose to approximate: {r_vp} vs {r_hnsw}"
    );
    assert!(r_bf > 0.7, "routing-limited exact recall {r_bf}");
}

#[test]
fn fully_exact_configuration_matches_brute_force() {
    // Exact local index + routing that covers every partition == exact
    // global k-NN, end to end through the distributed engine.
    let data = synth::sift_like(1_000, 8, 405);
    let queries = synth::queries_near(&data, 10, 0.05, 406);
    let config = cfg(LocalIndexKind::VpExact, 405).with_route(RouteConfig {
        margin_frac: f32::INFINITY,
        max_partitions: usize::MAX,
    });
    let index = DistIndex::build(&data, config);
    let report = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(5))
        .run();
    let gt = ground_truth::brute_force(&data, &queries, 5, Distance::L2);
    for (qi, (got, want)) in report.results.iter().zip(&gt).enumerate() {
        assert_eq!(got, want, "query {qi} must be exact");
    }
}
