//! Routing policies and per-partition replica maps — the first-class API
//! behind adaptive replication and load-aware dispatch.
//!
//! The paper's Algorithm 5 fixes one replication factor `r` at dispatch
//! time and rotates round-robin inside each workgroup. That is
//! [`RoutingPolicy::Static`], the compatibility default. The adaptive
//! alternative, [`RoutingPolicy::PowerOfTwo`], lets a controller raise the
//! replica count of individual hot partitions (a [`ReplicaMap`]) and picks
//! between two hashed workgroup slots by *deterministic virtual-time queue
//! depth* — the number of probes the master has already dispatched to each
//! core this batch. The fault-free master dispatches the whole batch
//! before collecting anything, so the dispatched-probe count per core *is*
//! the core's virtual-time queue depth at dispatch: a pure function of the
//! batch content, never of wall clock or thread scheduling, which is what
//! keeps reports bit-identical across `FASTANN_THREADS`.

/// How the master places partition probes onto replica workgroups.
///
/// The policy carries the replication shape: `base` replicas for every
/// partition, and (for the adaptive policy) a `max` the serve-layer
/// controller may raise individual hot partitions to via a
/// [`ReplicaMap`]. Workgroup membership is unchanged from Algorithm 5 —
/// partition `d` with `r` replicas lives on cores `{d, …, d+r−1 mod P}` —
/// only the *choice within* the workgroup differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Algorithm 5 as published: every partition has exactly `r` replicas
    /// and probes rotate round-robin within the workgroup. `Static(1)`
    /// is the no-replication baseline.
    Static(usize),
    /// Power-of-two-choices over deterministic virtual-time queue depth:
    /// each probe hashes `(query, partition)` to two distinct workgroup
    /// slots and takes the one whose core has fewer probes dispatched so
    /// far this batch (ties keep the first hash). Partitions start at
    /// `base` replicas; an adaptive controller may raise any partition up
    /// to `max` through a [`ReplicaMap`].
    PowerOfTwo {
        /// Replicas every partition starts with (`≥ 1`).
        base: usize,
        /// Upper bound a controller may raise a hot partition to
        /// (`≥ base`).
        max: usize,
    },
}

impl Default for RoutingPolicy {
    /// The paper baseline: no replication, round-robin dispatch.
    fn default() -> Self {
        RoutingPolicy::Static(1)
    }
}

impl RoutingPolicy {
    /// Replicas every partition holds before any adaptive raise.
    pub fn base_replicas(&self) -> usize {
        match *self {
            RoutingPolicy::Static(r) => r,
            RoutingPolicy::PowerOfTwo { base, .. } => base,
        }
    }

    /// Largest replica count any partition may reach under this policy.
    pub fn max_replicas(&self) -> usize {
        match *self {
            RoutingPolicy::Static(r) => r,
            RoutingPolicy::PowerOfTwo { max, .. } => max,
        }
    }

    /// `true` for policies whose replica counts a controller may change at
    /// run time (everything except [`RoutingPolicy::Static`]).
    pub fn is_adaptive(&self) -> bool {
        matches!(self, RoutingPolicy::PowerOfTwo { .. })
    }

    /// Metrics label of this policy (`fastann_routing_decisions_total`).
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::Static(_) => "static",
            RoutingPolicy::PowerOfTwo { .. } => "po2",
        }
    }

    /// Panics unless the shape is coherent (`base ≥ 1`, `max ≥ base`).
    pub(crate) fn validate(&self) {
        match *self {
            RoutingPolicy::Static(r) => {
                assert!(r >= 1, "replication factor must be at least 1");
            }
            RoutingPolicy::PowerOfTwo { base, max } => {
                assert!(base >= 1, "base replica count must be at least 1");
                assert!(max >= base, "max replicas ({max}) must cover base ({base})");
            }
        }
    }
}

/// Per-partition replica counts plus a generation number.
///
/// The serve-layer controller owns one of these and hands the engine a
/// snapshot per dispatched batch ([`crate::SearchRequest::replicas`]); the
/// generation bumps on every raise/decay, so in-flight dispatch keeps the
/// map it was dispatched with while later batches observe the new one —
/// the epoch idiom the result cache already uses for index installs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaMap {
    counts: Vec<usize>,
    generation: u64,
}

impl ReplicaMap {
    /// A map of `n_partitions` partitions at `r` replicas each
    /// (generation 0).
    pub fn uniform(n_partitions: usize, r: usize) -> Self {
        assert!(r >= 1, "replica count must be at least 1");
        Self {
            counts: vec![r; n_partitions],
            generation: 0,
        }
    }

    /// Number of partitions the map covers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when the map covers no partitions.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Replica count of `part`; partitions beyond the map (e.g. created by
    /// a split after the snapshot) default to 1.
    pub fn count(&self, part: usize) -> usize {
        self.counts.get(part).copied().unwrap_or(1)
    }

    /// Sets `part`'s replica count, bumping the generation when the value
    /// actually changes. Returns `true` on a change.
    pub fn set_count(&mut self, part: usize, r: usize) -> bool {
        assert!(r >= 1, "replica count must be at least 1");
        assert!(part < self.counts.len(), "partition {part} out of range");
        if self.counts[part] == r {
            return false;
        }
        self.counts[part] = r;
        self.generation += 1;
        true
    }

    /// Epoch-style generation: bumps on every effective
    /// [`ReplicaMap::set_count`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The raw per-partition counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Largest replica count in the map (1 for an empty map).
    pub fn max_count(&self) -> usize {
        self.counts.iter().copied().max().unwrap_or(1)
    }

    /// Grows the map to `n_partitions` entries (new partitions — dynamic
    /// splits — start at `base`); never shrinks, never bumps the
    /// generation for pure growth.
    pub fn ensure_len(&mut self, n_partitions: usize, base: usize) {
        assert!(base >= 1, "replica count must be at least 1");
        if self.counts.len() < n_partitions {
            self.counts.resize(n_partitions, base);
        }
    }
}

/// SplitMix64 — the slot hash of the power-of-two-choices dispatch. A
/// fixed, seedless mix so the two candidate slots of a probe are a pure
/// function of `(query id, partition)`.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_shape_accessors() {
        let s = RoutingPolicy::Static(3);
        assert_eq!(s.base_replicas(), 3);
        assert_eq!(s.max_replicas(), 3);
        assert!(!s.is_adaptive());
        assert_eq!(s.label(), "static");
        let p = RoutingPolicy::PowerOfTwo { base: 1, max: 4 };
        assert_eq!(p.base_replicas(), 1);
        assert_eq!(p.max_replicas(), 4);
        assert!(p.is_adaptive());
        assert_eq!(p.label(), "po2");
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::Static(1));
    }

    #[test]
    #[should_panic]
    fn inverted_po2_shape_rejected() {
        RoutingPolicy::PowerOfTwo { base: 3, max: 2 }.validate();
    }

    #[test]
    #[should_panic]
    fn zero_static_rejected() {
        RoutingPolicy::Static(0).validate();
    }

    #[test]
    fn replica_map_generation_bumps_only_on_change() {
        let mut m = ReplicaMap::uniform(4, 1);
        assert_eq!(m.generation(), 0);
        assert_eq!(m.count(2), 1);
        assert!(m.set_count(2, 3));
        assert_eq!(m.generation(), 1);
        assert_eq!(m.count(2), 3);
        assert_eq!(m.max_count(), 3);
        assert!(!m.set_count(2, 3), "no-op set must not bump");
        assert_eq!(m.generation(), 1);
        assert!(m.set_count(2, 1));
        assert_eq!(m.generation(), 2);
    }

    #[test]
    fn replica_map_growth_defaults_and_out_of_range_reads() {
        let mut m = ReplicaMap::uniform(2, 2);
        assert_eq!(m.count(7), 1, "unknown partitions default to 1 replica");
        m.ensure_len(4, 2);
        assert_eq!(m.len(), 4);
        assert_eq!(m.count(3), 2);
        assert_eq!(m.generation(), 0, "growth is not a routing change");
        m.ensure_len(2, 2);
        assert_eq!(m.len(), 4, "never shrinks");
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
