//! Parity: the token engine must reach the same verdicts as the retired
//! textual pass for the 8 ported legacy rules, on the real workspace.
//!
//! Both passes expose raw (pre-allowlist) findings; we compare them as
//! (file, line, rule) sets restricted to [`LEGACY_RULES`], so the
//! determinism family (token-engine-only) doesn't enter the diff. Any
//! asymmetric finding is printed with a marker saying which side saw it.

use std::collections::BTreeSet;
use std::path::Path;

use fastann_check::lint;
use fastann_check::rules::LEGACY_RULES;
use fastann_check::textual;

#[test]
fn token_engine_matches_textual_pass_on_legacy_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();

    let keyed = |vs: Vec<lint::Violation>| -> BTreeSet<(String, usize, &'static str)> {
        vs.into_iter()
            .filter(|v| LEGACY_RULES.contains(&v.rule))
            .map(|v| (v.file, v.line, v.rule))
            .collect()
    };

    let textual = keyed(textual::raw_findings(&root).expect("textual walk"));
    let token = keyed(lint::raw_findings(&root).expect("token walk"));

    let mut diff = String::new();
    for f in textual.difference(&token) {
        diff.push_str(&format!("textual only: {}:{} [{}]\n", f.0, f.1, f.2));
    }
    for f in token.difference(&textual) {
        diff.push_str(&format!("token only:   {}:{} [{}]\n", f.0, f.1, f.2));
    }
    assert!(
        diff.is_empty(),
        "legacy-rule verdicts diverged between passes:\n{diff}"
    );
    // both passes must actually be exercising the workspace: the seed
    // repo has allowlisted findings, so an empty set means a broken walk
    assert!(
        !token.is_empty(),
        "no legacy findings at all — file walk is broken"
    );
}
