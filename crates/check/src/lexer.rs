//! Minimal Rust lexer for the lint engine.
//!
//! Produces a flat token stream with line numbers — enough structure for
//! pattern-level rules without a full parser. The lexer understands the
//! constructs a textual pass cannot: cooked strings with escapes, raw
//! strings (`r"…"`, `r#"…"#`, any hash depth), byte strings and byte
//! chars, char literals vs. lifetimes, nested block comments, and raw
//! identifiers. Everything inside a string or comment becomes a single
//! token of that kind, so rule needles can never match literal or
//! comment *content* by accident.
//!
//! Multi-character operators that rules care about (`::`, compound
//! assignments, comparisons) are fused into single punct tokens;
//! delimiters stay single characters so bracket matching in the engine
//! is uniform.

/// Lexical class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String literal: cooked, raw, byte, or raw byte.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`, `'static`), including the leading quote.
    Lifetime,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
    /// `//` comment to end of line (includes `///` and `//!` docs).
    LineComment,
    /// `/* … */` comment, nesting handled; may span lines.
    BlockComment,
}

/// One lexed token: kind, verbatim text, and the 1-based line where it
/// starts.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Tok {
    /// `true` for a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Two-character operators fused into a single punct token, longest
/// first where prefixes overlap.
const TWO_CHAR_OPS: [&str; 19] = [
    "::", "->", "=>", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "==", "!=", "<=", ">=", "&&",
    "||", "..", "<<",
];

/// Lexes `src` into a token stream. Never fails: malformed input
/// degrades to punct tokens rather than aborting, so the lint stays
/// usable on files that do not (yet) compile.
pub fn lex(src: &str) -> Vec<Tok> {
    let cs: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // line comment (also /// and //! docs)
        if c == '/' && cs.get(i + 1) == Some(&'/') {
            let start = i;
            while i < cs.len() && cs[i] != '\n' {
                i += 1;
            }
            toks.push(tok(TokKind::LineComment, &cs[start..i], line));
            continue;
        }
        // block comment, nesting tracked
        if c == '/' && cs.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < cs.len() && depth > 0 {
                if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if cs[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(tok(TokKind::BlockComment, &cs[start..i], start_line));
            continue;
        }
        // raw strings and raw identifiers: r"…", r#"…"#, r#ident
        if c == 'r' && matches!(cs.get(i + 1), Some('"') | Some('#')) {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while cs.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if cs.get(j) == Some(&'"') {
                let (end, nl) = raw_string_end(&cs, j + 1, hashes);
                toks.push(tok(TokKind::Str, &cs[i..end], line));
                line += nl;
                i = end;
                continue;
            }
            if hashes == 1 && cs.get(j).is_some_and(|&c| is_ident_start(c)) {
                let start = i;
                i = j;
                while i < cs.len() && is_ident_continue(cs[i]) {
                    i += 1;
                }
                toks.push(tok(TokKind::Ident, &cs[start..i], line));
                continue;
            }
            // a lone `r` before something unexpected: fall through as ident
        }
        // byte strings / byte chars: b"…", br#"…"#, b'x'
        if c == 'b' {
            match cs.get(i + 1) {
                Some('"') => {
                    let (end, nl) = cooked_string_end(&cs, i + 2);
                    toks.push(tok(TokKind::Str, &cs[i..end], line));
                    line += nl;
                    i = end;
                    continue;
                }
                Some('\'') => {
                    let end = char_literal_end(&cs, i + 2);
                    toks.push(tok(TokKind::Char, &cs[i..end], line));
                    i = end;
                    continue;
                }
                Some('r') if matches!(cs.get(i + 2), Some('"') | Some('#')) => {
                    let mut j = i + 2;
                    let mut hashes = 0usize;
                    while cs.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if cs.get(j) == Some(&'"') {
                        let (end, nl) = raw_string_end(&cs, j + 1, hashes);
                        toks.push(tok(TokKind::Str, &cs[i..end], line));
                        line += nl;
                        i = end;
                        continue;
                    }
                }
                _ => {}
            }
        }
        // cooked string
        if c == '"' {
            let (end, nl) = cooked_string_end(&cs, i + 1);
            toks.push(tok(TokKind::Str, &cs[i..end], line));
            line += nl;
            i = end;
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            if cs.get(i + 1) == Some(&'\\') {
                let end = char_literal_end(&cs, i + 1);
                toks.push(tok(TokKind::Char, &cs[i..end], line));
                i = end;
                continue;
            }
            let next_is_ident = cs.get(i + 1).is_some_and(|&c| is_ident_start(c));
            if next_is_ident && cs.get(i + 2) != Some(&'\'') {
                let start = i;
                i += 1;
                while i < cs.len() && is_ident_continue(cs[i]) {
                    i += 1;
                }
                toks.push(tok(TokKind::Lifetime, &cs[start..i], line));
                continue;
            }
            let end = char_literal_end(&cs, i + 1);
            toks.push(tok(TokKind::Char, &cs[i..end], line));
            i = end;
            continue;
        }
        // number
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < cs.len() {
                let d = cs[i];
                let fractional_dot = d == '.'
                    && cs.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    && cs.get(i.wrapping_sub(1)) != Some(&'.');
                let exponent_sign = (d == '+' || d == '-')
                    && matches!(cs.get(i.wrapping_sub(1)), Some('e') | Some('E'));
                if d.is_ascii_alphanumeric() || d == '_' || fractional_dot || exponent_sign {
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(tok(TokKind::Num, &cs[start..i], line));
            continue;
        }
        // identifier / keyword
        if is_ident_start(c) {
            let start = i;
            while i < cs.len() && is_ident_continue(cs[i]) {
                i += 1;
            }
            toks.push(tok(TokKind::Ident, &cs[start..i], line));
            continue;
        }
        // punct: fuse known two-char operators
        if i + 1 < cs.len() {
            let pair: String = [cs[i], cs[i + 1]].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: pair,
                    line,
                });
                i += 2;
                continue;
            }
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

fn tok(kind: TokKind, text: &[char], line: usize) -> Tok {
    Tok {
        kind,
        text: text.iter().collect(),
        line,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scans past a cooked string body starting just after the opening
/// quote; returns (index one past the closing quote, newlines crossed).
fn cooked_string_end(cs: &[char], mut i: usize) -> (usize, usize) {
    let mut nl = 0usize;
    while i < cs.len() {
        match cs[i] {
            '\\' => {
                if cs.get(i + 1) == Some(&'\n') {
                    nl += 1;
                }
                i += 2;
            }
            '"' => return (i + 1, nl),
            '\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Scans past a raw string body (after the opening quote) terminated by
/// a quote followed by `hashes` hash marks; returns (end index,
/// newlines crossed).
fn raw_string_end(cs: &[char], mut i: usize, hashes: usize) -> (usize, usize) {
    let mut nl = 0usize;
    while i < cs.len() {
        if cs[i] == '"'
            && cs[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return (i + 1 + hashes, nl);
        }
        if cs[i] == '\n' {
            nl += 1;
        }
        i += 1;
    }
    (i, nl)
}

/// Scans past a char-literal body starting just after the opening quote
/// (or at the backslash of an escape); returns index one past the
/// closing quote.
fn char_literal_end(cs: &[char], mut i: usize) -> usize {
    while i < cs.len() {
        match cs[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn needles_inside_strings_and_comments_are_opaque() {
        let src = r##"
let a = "x.unwrap() and panic!(oops)";
// a comment mentioning y.unwrap()
/* block with thread::spawn( inside /* nested */ still comment */
let b = r#"raw with .recv(None, None)"#;
"##;
        let toks = lex(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "a", "let", "b"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            2,
            "cooked and raw strings each lex as one token"
        );
        assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 2);
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = b'z'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 3, "{toks:?}");
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"two\nlines\";\nlet b = 1; /* c\nc */ let d = 2;\n";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").expect("b is lexed");
        assert_eq!(b.line, 3);
        let d = toks.iter().find(|t| t.text == "d").expect("d is lexed");
        assert_eq!(d.line, 4);
    }

    #[test]
    fn two_char_operators_fuse() {
        let toks = kinds("a += b::c; d != e .. f;");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&".."));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn hashed_raw_strings_with_embedded_quotes() {
        let toks = lex(r###"let s = r##"a "#quoted"# b"##; let t = 9;"###);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.text == "t"), "lexing resumes after");
    }
}
