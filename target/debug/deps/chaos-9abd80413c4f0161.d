/root/repo/target/debug/deps/chaos-9abd80413c4f0161.d: crates/core/tests/chaos.rs

/root/repo/target/debug/deps/chaos-9abd80413c4f0161: crates/core/tests/chaos.rs

crates/core/tests/chaos.rs:
