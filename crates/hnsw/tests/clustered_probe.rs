//! Exact vs quantized search quality on clustered (MDCGen) data.
//!
//! The fast test below is the regression guard for the clustered-data
//! recall collapse fixed by the diversified multi-entry descent (DESIGN.md
//! §13): before the fix, single-seed greedy descent stranded whole query
//! clusters in the wrong basin (cluster-4 recall@10 was 0.15 on this exact
//! configuration) while the quantized path happened to survive. The large
//! `#[ignore]` probe reproduces the originally-reported 32k×512 collapse
//! configuration; run it with
//! `cargo test -p fastann-hnsw --release --test clustered_probe -- --ignored --nocapture`.

use fastann_data::synth::mdcgen;
use fastann_data::{ground_truth, Distance, Neighbor};
use fastann_hnsw::{Hnsw, HnswConfig, SearchScratch};

fn run_exact_and_quantized(
    index: &Hnsw,
    queries: &fastann_data::VectorSet,
) -> (Vec<Vec<Neighbor>>, Vec<Vec<Neighbor>>, u64) {
    let mut scratch = SearchScratch::with_capacity(index.len());
    let mut ex = Vec::new();
    let mut qu = Vec::new();
    let mut entry_seeds = 0u64;
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let (hits, stats) = index.search_with_scratch(q, 10, 64, &mut scratch);
        entry_seeds += stats.entry_seeds;
        ex.push(hits);
        qu.push(
            index
                .search_quantized_with_scratch(q, 10, 64, 3, &mut scratch)
                .0,
        );
    }
    (ex, qu, entry_seeds)
}

/// Fast clustered-recall regression: a scaled-down MDCGen workload whose
/// query cluster sat in the wrong descent basin before the multi-entry
/// fix. Seeds are fixed; the build takes well under a minute even in
/// debug profiles.
#[test]
fn clustered_exact_recall_regression() {
    let n = 8000;
    let ds = mdcgen::generate(&mdcgen::MdcConfig {
        n_points: n,
        dim: 128,
        n_clusters: 10,
        n_outliers: n / 200,
        compactness: 0.05,
        spread: mdcgen::Spread::Mixed,
        seed: 0x517,
    });
    // cluster 4 is the basin the pre-fix descent could not reach (0.15)
    let queries = ds.queries_from_cluster(20, 4, 0.01, 0x51c);
    let data = ds.points;
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);

    let index = Hnsw::build(
        data.clone(),
        Distance::L2,
        HnswConfig::with_m(8).ef_construction(80).seed(7),
    );
    assert!(
        index.entry_set().len() > 1,
        "clustered build must select a diverse entry set"
    );
    let (ex, qu, entry_seeds) = run_exact_and_quantized(&index, &queries);
    assert!(
        entry_seeds > 0,
        "queries on clustered data should consume diverse entry seeds"
    );
    let rex = ground_truth::recall_at_k(&ex, &gt, 10).mean;
    let rqu = ground_truth::recall_at_k(&qu, &gt, 10).mean;
    assert!(
        rex >= 0.90,
        "exact recall@10 collapsed on clustered data: {rex:.3} (pre-fix: 0.15)"
    );
    assert!(
        rex >= rqu - 0.02,
        "exact recall {rex:.3} fell more than 0.02 below quantized {rqu:.3}"
    );
}

/// The original 32k×512 collapse reproduction (exact recall@10 was ≈0.44
/// pre-fix; must hold ≥ 0.90 now). Too slow for the default suite.
#[test]
#[ignore]
fn exact_vs_quantized_on_mdcgen() {
    let n = 32_000;
    let ds = mdcgen::generate(&mdcgen::MdcConfig {
        n_points: n,
        dim: 512,
        n_clusters: 10,
        n_outliers: n / 200,
        compactness: 0.05,
        spread: mdcgen::Spread::Mixed,
        seed: 0x517,
    });
    let queries = ds.queries_from_cluster(100, 3, 0.01, 0x518);
    let data = ds.points;
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);

    let index = Hnsw::build(
        data.clone(),
        Distance::L2,
        HnswConfig::with_m(16).ef_construction(100).seed(7),
    );
    let (ex, qu, _) = run_exact_and_quantized(&index, &queries);
    let rex = ground_truth::recall_at_k(&ex, &gt, 10).mean;
    let rqu = ground_truth::recall_at_k(&qu, &gt, 10).mean;
    println!("exact recall {rex:.3}, quantized recall {rqu:.3}");
    assert!(
        rex >= 0.90,
        "exact recall@10 on the 32k collapse config: {rex:.3} (pre-fix: 0.44)"
    );
    assert!(
        rex >= rqu - 0.02,
        "exact recall {rex:.3} fell more than 0.02 below quantized {rqu:.3}"
    );
}
