//! Routing auto-tuner: pick the cheapest `F(q)` policy that hits a recall
//! target on a validation sample.
//!
//! The paper fixes its routing policy per experiment; a downstream user
//! instead asks "give me recall ≥ 0.9 as cheaply as possible". The knobs
//! are [`RouteConfig::margin_frac`] (which boundaries count as "near") and
//! [`RouteConfig::max_partitions`] (the fan-out budget): more of either
//! means more partitions searched per query — higher recall, more work.
//! [`tune_routing`] walks a small policy ladder from cheapest to most
//! generous and returns the first rung that reaches the target on the
//! sample, measured against exact ground truth.

use fastann_data::{ground_truth, VectorSet};
use fastann_vptree::RouteConfig;

use crate::build::DistIndex;
use crate::config::SearchOptions;
use crate::request::SearchRequest;

/// Result of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The selected policy (also the cheapest that met the target, or the
    /// most generous rung if none did).
    pub route: RouteConfig,
    /// Recall@k achieved on the validation sample with that policy.
    pub recall: f64,
    /// Mean partitions searched per query under that policy.
    pub mean_fanout: f64,
    /// `true` when the target was actually met.
    pub met_target: bool,
    /// Every rung evaluated, cheapest first: `(policy, recall, fanout)`.
    pub ladder: Vec<(RouteConfig, f64, f64)>,
}

/// The policy ladder, cheapest first.
fn ladder(n_partitions: usize) -> Vec<RouteConfig> {
    let p = n_partitions;
    vec![
        RouteConfig {
            margin_frac: 0.0,
            max_partitions: 1,
        },
        RouteConfig {
            margin_frac: 0.1,
            max_partitions: 2.min(p),
        },
        RouteConfig {
            margin_frac: 0.15,
            max_partitions: 4.min(p),
        },
        RouteConfig {
            margin_frac: 0.25,
            max_partitions: 6.min(p),
        },
        RouteConfig {
            margin_frac: 0.35,
            max_partitions: (p / 4).max(8).min(p),
        },
        RouteConfig {
            margin_frac: 0.5,
            max_partitions: (p / 2).max(8).min(p),
        },
    ]
}

/// Finds the cheapest routing policy reaching `target_recall` (recall@k on
/// `sample` against exact ground truth computed here by brute force).
///
/// The returned policy should be written into a copy of the engine config
/// (`index.config.route`) for subsequent batches; the index itself is not
/// modified.
///
/// # Panics
/// Panics if `sample` is empty or the target is outside `(0, 1]`.
pub fn tune_routing(
    index: &DistIndex,
    data: &VectorSet,
    sample: &VectorSet,
    opts: &SearchOptions,
    target_recall: f64,
) -> TuneOutcome {
    assert!(!sample.is_empty(), "empty validation sample");
    assert!(
        target_recall > 0.0 && target_recall <= 1.0,
        "target recall must be in (0, 1]"
    );
    let gt = ground_truth::brute_force(data, sample, opts.k, index.config.metric);

    let mut probe = index.shallow_clone();
    let mut evaluated = Vec::new();
    for rung in ladder(index.n_partitions()) {
        probe.config.route = rung;
        let report = SearchRequest::new(&probe, sample).opts(*opts).run();
        let recall = ground_truth::recall_at_k(&report.results, &gt, opts.k).mean;
        evaluated.push((rung, recall, report.mean_fanout));
        if recall >= target_recall {
            return TuneOutcome {
                route: rung,
                recall,
                mean_fanout: report.mean_fanout,
                met_target: true,
                ladder: evaluated,
            };
        }
    }
    let &(route, recall, mean_fanout) = evaluated.last().expect("non-empty ladder");
    TuneOutcome {
        route,
        recall,
        mean_fanout,
        met_target: false,
        ladder: evaluated,
    }
}

impl DistIndex {
    /// Cheap handle sharing the partitions and skeleton but owning its own
    /// config — what the tuner mutates per rung.
    pub(crate) fn shallow_clone(&self) -> DistIndex {
        DistIndex {
            config: self.config.clone(),
            partitions: std::sync::Arc::clone(&self.partitions),
            router: std::sync::Arc::clone(&self.router),
            build_stats: self.build_stats.clone(),
            mutation_epoch: self.mutation_epoch,
            mutation_log: self.mutation_log.clone(),
        }
    }

    /// Returns a copy of this index handle with a different routing policy
    /// (partitions and skeleton shared, not rebuilt).
    pub fn with_route(&self, route: RouteConfig) -> DistIndex {
        let mut c = self.shallow_clone();
        c.config.route = route;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use fastann_data::synth;
    use fastann_hnsw::HnswConfig;

    fn setup() -> (VectorSet, VectorSet, DistIndex) {
        let data = synth::sift_like(4_000, 16, 71);
        let sample = synth::queries_near(&data, 40, 0.02, 72);
        let cfg = EngineConfig::new(16, 4)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(71))
            .with_seed(71);
        let index = DistIndex::build(&data, cfg);
        (data, sample, index)
    }

    #[test]
    fn tuner_meets_moderate_target() {
        let (data, sample, index) = setup();
        let out = tune_routing(
            &index,
            &data,
            &sample,
            &SearchOptions::new(10).with_ef(96),
            0.8,
        );
        assert!(out.met_target, "recall {} below target", out.recall);
        assert!(out.recall >= 0.8);
        assert!(!out.ladder.is_empty());
    }

    #[test]
    fn cheaper_targets_get_cheaper_policies() {
        let (data, sample, index) = setup();
        let opts = SearchOptions::new(10).with_ef(96);
        let easy = tune_routing(&index, &data, &sample, &opts, 0.3);
        let hard = tune_routing(&index, &data, &sample, &opts, 0.9);
        assert!(
            easy.mean_fanout <= hard.mean_fanout,
            "easy target fanout {} should not exceed hard target fanout {}",
            easy.mean_fanout,
            hard.mean_fanout
        );
        assert!(easy.ladder.len() <= hard.ladder.len());
    }

    #[test]
    fn impossible_target_reports_honestly() {
        let (data, sample, index) = setup();
        // ef=k exactly and a 1.0 target: likely unreachable; the tuner must
        // say so instead of pretending
        let out = tune_routing(
            &index,
            &data,
            &sample,
            &SearchOptions::new(10).with_ef(10),
            1.0,
        );
        if !out.met_target {
            assert!(out.recall < 1.0);
            assert_eq!(out.ladder.len(), 6, "all rungs evaluated");
        }
    }

    #[test]
    fn with_route_shares_partitions() {
        let (_, sample, index) = setup();
        let generous = index.with_route(RouteConfig {
            margin_frac: 0.5,
            max_partitions: 16,
        });
        let a = SearchRequest::new(&generous, &sample)
            .opts(SearchOptions::new(5))
            .run();
        let b = SearchRequest::new(&index, &sample)
            .opts(SearchOptions::new(5))
            .run();
        // more generous routing searches at least as many partitions
        assert!(a.mean_fanout >= b.mean_fanout);
    }

    #[test]
    #[should_panic]
    fn bad_target_panics() {
        let (data, sample, index) = setup();
        let _ = tune_routing(&index, &data, &sample, &SearchOptions::new(5), 0.0);
    }
}
