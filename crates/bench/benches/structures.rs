//! Data-structure micro-benchmarks: top-k selection, order statistics,
//! query routing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastann_data::select::{median, select_nth};
use fastann_data::{synth, Distance, Neighbor, TopK};
use fastann_vptree::{PartitionTree, RouteConfig};

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    let stream: Vec<Neighbor> = (0..10_000u32)
        .map(|i| Neighbor::new(i, ((i.wrapping_mul(2654435761)) % 100_000) as f32))
        .collect();
    for k in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("push_10k_stream", k), &k, |b, &k| {
            b.iter(|| {
                let mut t = TopK::new(k);
                for &n in &stream {
                    t.push(black_box(n));
                }
                t.worst()
            })
        });
    }
    group.bench_function("merge_two_k10", |b| {
        let mut x = TopK::new(10);
        let mut y = TopK::new(10);
        for &n in &stream[..100] {
            x.push(n);
        }
        for &n in &stream[100..200] {
            y.push(n);
        }
        b.iter(|| {
            let mut m = x.clone();
            m.merge(black_box(&y));
            m.worst()
        })
    });
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select");
    let data: Vec<f32> = (0..100_000u32)
        .map(|i| (i.wrapping_mul(2654435761) % 1_000_003) as f32)
        .collect();
    group.bench_function("select_nth_100k", |b| {
        b.iter(|| {
            let mut d = data.clone();
            select_nth(black_box(&mut d), 50_000)
        })
    });
    group.bench_function("median_100k", |b| {
        b.iter(|| {
            let mut d = data.clone();
            median(black_box(&mut d))
        })
    });
    group.bench_function("full_sort_100k_reference", |b| {
        b.iter(|| {
            let mut d = data.clone();
            d.sort_unstable_by(f32::total_cmp);
            d[50_000]
        })
    });
    group.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    let data = synth::sift_like(20_000, 128, 9);
    let queries = synth::queries_near(&data, 128, 0.02, 10);
    for parts in [16usize, 64, 256] {
        let (tree, _) = PartitionTree::build_local(&data, parts, Distance::L2, 9);
        group.bench_with_input(BenchmarkId::new("f_of_q", parts), &parts, |b, _| {
            let cfg = RouteConfig {
                margin_frac: 0.2,
                max_partitions: 4,
            };
            let mut i = 0;
            b.iter(|| {
                let q = queries.get(i % queries.len());
                i += 1;
                tree.route(black_box(q), &cfg)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk, bench_select, bench_route);
criterion_main!(benches);
