//! Vantage-point selection heuristic.
//!
//! Yianilos' construction (and the paper's `SelectVantagePointSerial`)
//! picks, from a random candidate subset, the point whose distances to a
//! data sample have the largest **second moment about their median**. A
//! large spread means the median sphere separates the space into two
//! well-distinguished shells, which maximises pruning during search.

use fastann_data::select::median;
use fastann_data::{Distance, VectorSet};

/// Second moment of `dists` about their median: `mean((d - med)^2)`.
/// Larger is better for a vantage point. Returns 0 for an empty slice.
pub fn spread_about_median(dists: &mut [f32]) -> f64 {
    if dists.is_empty() {
        return 0.0;
    }
    let med = median(dists) as f64;
    dists.iter().map(|&d| (d as f64 - med).powi(2)).sum::<f64>() / dists.len() as f64
}

/// Selects the best vantage point among `candidates` (row indexes into
/// `cand_set`), scoring each against the sample rows `sample` of
/// `sample_set`. Returns the index *within `candidates`* of the winner and
/// the number of distance evaluations spent.
///
/// The double indirection (separate candidate and sample sets) is what the
/// distributed construction needs: candidates may be representatives
/// received from other ranks while the sample is local data.
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn select_vantage(
    cand_set: &VectorSet,
    candidates: &[u32],
    sample_set: &VectorSet,
    sample: &[u32],
    dist: Distance,
) -> (usize, u64) {
    assert!(!candidates.is_empty(), "no vantage-point candidates");
    let mut best_idx = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    let mut ndist = 0u64;
    let mut dists = vec![0f32; sample.len()];
    for (ci, &cand) in candidates.iter().enumerate() {
        let cv = cand_set.get(cand as usize);
        for (j, &s) in sample.iter().enumerate() {
            dists[j] = dist.eval(cv, sample_set.get(s as usize));
        }
        ndist += sample.len() as u64;
        let score = spread_about_median(&mut dists);
        if score > best_score {
            best_score = score;
            best_idx = ci;
        }
    }
    (best_idx, ndist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_zero_for_identical() {
        let mut d = vec![2.0f32; 10];
        assert_eq!(spread_about_median(&mut d), 0.0);
        assert_eq!(spread_about_median(&mut []), 0.0);
    }

    #[test]
    fn spread_grows_with_dispersion() {
        let mut tight = vec![1.0f32, 1.1, 0.9, 1.05, 0.95];
        let mut wide = vec![0.0f32, 2.0, 0.1, 1.9, 1.0];
        assert!(spread_about_median(&mut wide) > spread_about_median(&mut tight));
    }

    #[test]
    fn corner_point_beats_center_point() {
        // For points uniform on a segment, a vantage point at the end has a
        // wider distance spread than one in the middle — the classic reason
        // VP trees favour "corner" vantage points.
        let n = 101;
        let data = VectorSet::from_flat(1, (0..n).map(|i| i as f32).collect());
        let sample: Vec<u32> = (0..n as u32).collect();
        // candidate 0 = end point (id 0), candidate 1 = centre (id 50)
        let (best, ndist) = select_vantage(&data, &[0, 50], &data, &sample, Distance::L2);
        assert_eq!(best, 0, "end point should win");
        assert_eq!(ndist, 2 * n as u64);
    }

    #[test]
    fn single_candidate_wins_trivially() {
        let data = VectorSet::from_flat(1, vec![1.0, 2.0, 3.0]);
        let (best, _) = select_vantage(&data, &[2], &data, &[0, 1], Distance::L2);
        assert_eq!(best, 0);
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panic() {
        let data = VectorSet::from_flat(1, vec![1.0]);
        let _ = select_vantage(&data, &[], &data, &[0], Distance::L2);
    }
}
