//! Cluster construction and rank-thread orchestration.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::net::{NetModel, Topology};
use crate::rank::{Mailbox, Rank};
use crate::vthreads::SchedPerturb;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of simulated MPI ranks (each is an OS thread).
    pub n_ranks: usize,
    /// Rank → compute-node mapping (drives intra- vs inter-node costs).
    pub topology: Topology,
    /// α–β network model.
    pub net: NetModel,
    /// Compute cost model for [`Rank::charge_dists`].
    pub cost: CostModel,
    /// Stack size per rank thread. Simulated programs keep their data in
    /// shared structures, so a modest stack suffices even for thousands of
    /// ranks.
    pub stack_bytes: usize,
    /// Watchdog: a blocking receive that waits longer than this (real time)
    /// panics, turning simulated deadlocks into test failures.
    pub recv_timeout: Duration,
    /// Seeded fault-injection schedule ([`FaultPlan::none`] by default —
    /// a vacuous plan adds one boolean check to the send path and nothing
    /// else).
    pub fault: FaultPlan,
    /// Seeded schedule perturbation for the race detector
    /// ([`SchedPerturb::none`] by default — the identity schedule).
    pub sched: SchedPerturb,
}

impl SimConfig {
    /// Default configuration for `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "cluster needs at least one rank");
        Self {
            n_ranks,
            topology: Topology::default(),
            net: NetModel::default(),
            cost: CostModel::default(),
            stack_bytes: 1 << 20,
            recv_timeout: Duration::from_secs(120),
            fault: FaultPlan::none(),
            sched: SchedPerturb::none(),
        }
    }

    /// Sets the topology (builder style).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the network model (builder style).
    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Sets the compute cost model (builder style).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the fault-injection plan (builder style).
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the schedule perturbation (builder style).
    pub fn sched(mut self, sched: SchedPerturb) -> Self {
        self.sched = sched;
        self
    }
}

/// Per-copy accounting of the shared mailbox plane: counts logical sends,
/// fault outcomes and completed receives. Closed out into a
/// [`Conservation`] report by [`Cluster::run_checked`].
#[derive(Default)]
pub(crate) struct Ledger {
    pub(crate) sent: AtomicU64,
    pub(crate) delivered: AtomicU64,
    pub(crate) dropped: AtomicU64,
    pub(crate) duplicated: AtomicU64,
    pub(crate) received: AtomicU64,
}

/// A message still sitting in a mailbox when its cluster shut down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakedMsg {
    /// Sender rank.
    pub src: usize,
    /// Receiver rank whose mailbox held the message.
    pub dst: usize,
    /// Message tag (bit 63 marks collective-internal traffic).
    pub tag: u64,
}

/// Message-conservation report from [`Cluster::run_checked`]: at shutdown
/// every posted send must have been received, explicitly dropped by the
/// [`FaultPlan`], or be reported here as leaked with its `(src, dst, tag)`
/// triple.
#[derive(Clone, Debug, Default)]
pub struct Conservation {
    /// Logical sends posted (`send_bytes` / `send_bytes_at` calls).
    pub sent: u64,
    /// Message copies enqueued into mailboxes (`sent + duplicated −
    /// dropped`).
    pub delivered: u64,
    /// Sends suppressed or dropped by the fault plan.
    pub dropped: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Receives completed by simulated code.
    pub received: u64,
    /// Copies never received: one entry per message left in a mailbox.
    pub leaked: Vec<LeakedMsg>,
}

impl Conservation {
    /// `true` when every delivered copy was received and the per-copy
    /// arithmetic closes. Fault-plan drops are accounted, not leaks — a
    /// lossy run can still be clean.
    pub fn is_clean(&self) -> bool {
        self.leaked.is_empty()
            && self.delivered == self.sent + self.duplicated - self.dropped
            && self.received == self.delivered
    }

    /// Panics with the full report (leak triples included) unless
    /// [`Conservation::is_clean`].
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "message conservation violated: {self:?}");
    }
}

/// State shared by all rank threads of one cluster run.
pub(crate) struct Shared {
    pub(crate) cfg: SimConfig,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) ledger: Ledger,
    registry: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    next_key: AtomicU64,
}

impl Shared {
    pub(crate) fn registry_put(&self, value: Box<dyn Any + Send + Sync>) -> u64 {
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        self.registry.lock().insert(key, Arc::from(value));
        key
    }

    pub(crate) fn registry_get(&self, key: u64) -> Arc<dyn Any + Send + Sync> {
        self.registry
            .lock()
            .get(&key)
            .cloned()
            .unwrap_or_else(|| panic!("registry key {key} not found"))
    }
}

/// A simulated cluster: spawns one OS thread per rank and runs an SPMD
/// closure on each.
pub struct Cluster {
    cfg: SimConfig,
}

impl Cluster {
    /// Creates a cluster with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this cluster runs with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `f` on every rank and returns the per-rank results in rank
    /// order. Panics in any rank are propagated (with the rank id) after
    /// all threads have been joined or abandoned.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        self.run_checked(f).0
    }

    /// Like [`Cluster::run`], additionally closing out the message ledger:
    /// the returned [`Conservation`] report accounts for every posted send
    /// (received, dropped by the fault plan, or leaked — still sitting in a
    /// mailbox at shutdown, named by `(src, dst, tag)`).
    ///
    /// A leak is not automatically an error — a program that shuts down with
    /// sends in flight (or a crashed receiver's backlog) legitimately leaves
    /// mail behind. Fault-free protocol paths should assert
    /// [`Conservation::is_clean`].
    pub fn run_checked<R, F>(&self, f: F) -> (Vec<R>, Conservation)
    where
        R: Send,
        F: Fn(&mut Rank) -> R + Send + Sync,
    {
        let n = self.cfg.n_ranks;
        let shared = Arc::new(Shared {
            cfg: self.cfg.clone(),
            mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
            ledger: Ledger::default(),
            registry: Mutex::new(HashMap::new()),
            next_key: AtomicU64::new(1),
        });

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);

        std::thread::scope(|scope| {
            let f = &f;
            let mut handles = Vec::with_capacity(n);
            for (r, slot) in results.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let builder = std::thread::Builder::new()
                    .name(format!("simrank-{r}"))
                    .stack_size(self.cfg.stack_bytes);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let mut rank = Rank::new(r, shared);
                        *slot = Some(f(&mut rank));
                    })
                    .expect("failed to spawn rank thread");
                handles.push((r, handle));
            }
            let mut first_panic: Option<(usize, Box<dyn Any + Send>)> = None;
            for (r, h) in handles {
                if let Err(p) = h.join() {
                    first_panic.get_or_insert((r, p));
                }
            }
            if let Some((r, p)) = first_panic {
                eprintln!("simulated rank {r} panicked");
                std::panic::resume_unwind(p);
            }
        });

        let ledger = &shared.ledger;
        let mut leaked = Vec::new();
        for (dst, mb) in shared.mailboxes.iter().enumerate() {
            for m in mb.queue.lock().iter() {
                leaked.push(LeakedMsg {
                    src: m.src,
                    dst,
                    tag: m.tag,
                });
            }
        }
        let conservation = Conservation {
            sent: ledger.sent.load(Ordering::Relaxed),
            delivered: ledger.delivered.load(Ordering::Relaxed),
            dropped: ledger.dropped.load(Ordering::Relaxed),
            duplicated: ledger.duplicated.load(Ordering::Relaxed),
            received: ledger.received.load(Ordering::Relaxed),
            leaked,
        };

        let results = results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect();
        (results, conservation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = Cluster::new(SimConfig::new(8)).run(|rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn many_ranks_spawn_fine() {
        let out = Cluster::new(SimConfig::new(512)).run(|rank| rank.rank());
        assert_eq!(out.len(), 512);
        assert_eq!(out[511], 511);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        Cluster::new(SimConfig::new(4)).run(|rank| {
            if rank.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn clocks_start_at_zero() {
        let out = Cluster::new(SimConfig::new(3)).run(|rank| rank.now());
        assert!(out.iter().all(|&t| t == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = SimConfig::new(0);
    }

    #[test]
    fn validator_conservation_clean_run_balances() {
        let (_, cons) = Cluster::new(SimConfig::new(3)).run_checked(|rank| {
            if rank.rank() == 0 {
                rank.send_bytes(1, 7, bytes::Bytes::from_static(b"a"));
                rank.send_bytes(2, 8, bytes::Bytes::from_static(b"bb"));
            } else {
                let _ = rank.recv(Some(0), None);
            }
        });
        assert_eq!(cons.sent, 2);
        assert_eq!(cons.received, 2);
        assert_eq!(cons.dropped, 0);
        assert!(cons.leaked.is_empty());
        cons.assert_clean();
    }

    #[test]
    fn validator_conservation_reports_leak_triple() {
        // deliberately corrupted protocol: rank 1 never receives its mail
        let (_, cons) = Cluster::new(SimConfig::new(2)).run_checked(|rank| {
            if rank.rank() == 0 {
                rank.send_bytes(1, 42, bytes::Bytes::from_static(b"lost"));
            }
        });
        assert!(!cons.is_clean());
        assert_eq!(
            cons.leaked,
            vec![LeakedMsg {
                src: 0,
                dst: 1,
                tag: 42
            }]
        );
    }

    #[test]
    #[should_panic(expected = "message conservation violated")]
    fn validator_conservation_assert_clean_panics_on_leak() {
        let (_, cons) = Cluster::new(SimConfig::new(2)).run_checked(|rank| {
            if rank.rank() == 0 {
                rank.send_bytes(1, 9, bytes::Bytes::new());
            }
        });
        cons.assert_clean();
    }

    #[test]
    fn validator_conservation_accounts_fault_drops_as_clean() {
        use crate::fault::FaultPlan;
        // every data message dropped; receiver uses try_recv so it cannot
        // hang — drops are accounted, the run is still conservation-clean
        let plan = FaultPlan::new(1).drop_msgs(None, None, None, 1.0);
        let (_, cons) = Cluster::new(SimConfig::new(2).fault(plan)).run_checked(|rank| {
            if rank.rank() == 0 {
                for _ in 0..5 {
                    rank.send_bytes(1, 3, bytes::Bytes::from_static(b"x"));
                }
            } else {
                let _ = rank.try_recv(Some(0), Some(3));
            }
        });
        assert_eq!(cons.sent, 5);
        assert_eq!(cons.dropped, 5);
        assert_eq!(cons.delivered, 0);
        cons.assert_clean();
    }
}
