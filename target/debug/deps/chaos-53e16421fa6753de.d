/root/repo/target/debug/deps/chaos-53e16421fa6753de.d: crates/core/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-53e16421fa6753de.rmeta: crates/core/tests/chaos.rs Cargo.toml

crates/core/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
