//! `no-unwrap`, `no-panic` and `no-thread-spawn`: the failure-mode and
//! parallelism-discipline rules.
//!
//! The simulator crate is exempt from `no-panic` (a simulated-rank
//! panic *is* the simulated fault model) and from `no-thread-spawn`
//! (its rank scheduler is the one legitimate direct spawner).

use crate::engine::FileCtx;
use crate::lint::{Violation, RULE_PANIC, RULE_SPAWN, RULE_UNWRAP};

/// Macro names whose invocation panics.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the three rules over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let is_mpisim = ctx.rel.starts_with("crates/mpisim/");
    for ci in 0..ctx.n() {
        if ctx.in_test(ci) {
            continue;
        }
        // .unwrap()
        if ctx.is_punct(ci, ".")
            && ctx.is_ident(ci + 1, "unwrap")
            && ctx.is_punct(ci + 2, "(")
            && ctx.is_punct(ci + 3, ")")
        {
            ctx.flag(out, ci + 1, RULE_UNWRAP);
        }
        if is_mpisim {
            continue;
        }
        // panicking macro invocation: name ! (
        if ctx.is_punct(ci + 1, "!")
            && ctx.is_punct(ci + 2, "(")
            && PANIC_MACROS.iter().any(|m| ctx.is_ident(ci, m))
        {
            ctx.flag(out, ci, RULE_PANIC);
        }
        // direct thread spawning: thread::spawn(, .spawn_scoped(,
        // thread::Builder::new(
        let spawn = (ctx.is_ident(ci, "thread")
            && ctx.is_punct(ci + 1, "::")
            && ctx.is_ident(ci + 2, "spawn")
            && ctx.is_punct(ci + 3, "("))
            || (ctx.is_punct(ci, ".")
                && ctx.is_ident(ci + 1, "spawn_scoped")
                && ctx.is_punct(ci + 2, "("))
            || (ctx.is_ident(ci, "thread")
                && ctx.is_punct(ci + 1, "::")
                && ctx.is_ident(ci + 2, "Builder")
                && ctx.is_punct(ci + 3, "::")
                && ctx.is_ident(ci + 4, "new")
                && ctx.is_punct(ci + 5, "("));
        if spawn {
            ctx.flag(out, ci, RULE_SPAWN);
        }
    }
}
