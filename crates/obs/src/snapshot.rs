//! Immutable metric snapshots and their exporters (Prometheus text
//! format and hand-rolled JSON — the workspace deliberately has no
//! serde).

use std::fmt::Write as _;

/// One series' frozen value.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueSnapshot {
    /// Monotone counter.
    Counter(u64),
    /// Max-gauge: the largest value observed.
    Gauge(f64),
    /// Fixed-bucket histogram. `counts` is per-bucket (non-cumulative)
    /// with one trailing entry for `+Inf`; `sum` is exact (reconstructed
    /// from the fixed-point accumulator, resolution 1/1024).
    Histogram {
        /// Ascending bucket upper bounds (exclusive of the implicit
        /// `+Inf`).
        bounds: Vec<f64>,
        /// Observations per bucket, `bounds.len() + 1` entries.
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
    },
}

/// One series: name, sorted label pairs, value.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Metric name (already Prometheus-safe by construction: the
    /// instrumentation uses static `snake_case` names).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: ValueSnapshot,
}

/// A frozen, canonically-ordered view of a [`crate::Metrics`] registry.
/// Compared with `==` in the determinism tests: two snapshots are equal
/// iff every series, label and bit of every value is identical.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, sorted by `(name, labels)`.
    pub entries: Vec<MetricEntry>,
}

/// Renders an `f64` with shortest-roundtrip precision (Rust's `{}`),
/// which is deterministic across platforms and faithful to the bits.
fn fmt_f64(v: f64) -> String {
    if v == f64::NEG_INFINITY {
        // an untouched max-gauge; Prometheus spells it "-Inf"
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `{a="1",b="2"}` (empty string when there are no labels);
/// `extra` appends one more pair, for histogram `le` labels.
fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Escapes a label value per the Prometheus text-format rules.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl MetricsSnapshot {
    /// Number of series.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one series by name and (order-insensitive) label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&ValueSnapshot> {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort_unstable();
        self.entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == want.len()
                    && e.labels
                        .iter()
                        .zip(&want)
                        .all(|((k, v), (wk, wv))| k == wk && v == wv)
            })
            .map(|e| &e.value)
    }

    /// The value of a counter series, if present and a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels) {
            Some(ValueSnapshot::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// `(count, sum)` of a histogram series, if present and a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<(u64, f64)> {
        match self.get(name, labels) {
            Some(ValueSnapshot::Histogram { count, sum, .. }) => Some((*count, *sum)),
            _ => None,
        }
    }

    /// Sums every counter series with this name across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                ValueSnapshot::Counter(n) => Some(*n),
                _ => None,
            })
            .sum()
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (one `# TYPE` line per metric name, cumulative `_bucket` series
    /// plus `_sum`/`_count` for histograms). Deterministic: series are
    /// emitted in snapshot order, floats with shortest-roundtrip
    /// precision.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut last_name: Option<&str> = None;
        for e in &self.entries {
            if last_name != Some(e.name.as_str()) {
                let ty = match &e.value {
                    ValueSnapshot::Counter(_) => "counter",
                    ValueSnapshot::Gauge(_) => "gauge",
                    ValueSnapshot::Histogram { .. } => "histogram",
                };
                let _ = writeln!(s, "# TYPE {} {ty}", e.name);
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                ValueSnapshot::Counter(n) => {
                    let _ = writeln!(s, "{}{} {n}", e.name, fmt_labels(&e.labels, None));
                }
                ValueSnapshot::Gauge(v) => {
                    let _ = writeln!(
                        s,
                        "{}{} {}",
                        e.name,
                        fmt_labels(&e.labels, None),
                        fmt_f64(*v)
                    );
                }
                ValueSnapshot::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = bounds
                            .get(i)
                            .map_or_else(|| "+Inf".to_string(), |b| fmt_f64(*b));
                        let _ = writeln!(
                            s,
                            "{}_bucket{} {cum}",
                            e.name,
                            fmt_labels(&e.labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        s,
                        "{}_sum{} {}",
                        e.name,
                        fmt_labels(&e.labels, None),
                        fmt_f64(*sum)
                    );
                    let _ = writeln!(s, "{}_count{} {count}", e.name, fmt_labels(&e.labels, None));
                }
            }
        }
        s
    }

    /// Renders the snapshot as a JSON array of series objects (no
    /// trailing newline). `indent` is prepended to every line so the
    /// array can nest inside a larger document (the `BENCH_*.json`
    /// emitters pass their own indent).
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let i = indent;
        if self.entries.is_empty() {
            let _ = write!(s, "{i}[]");
            return s;
        }
        let _ = writeln!(s, "{i}[");
        for (ei, e) in self.entries.iter().enumerate() {
            let labels: Vec<String> = e
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
                .collect();
            let _ = writeln!(s, "{i}  {{");
            let _ = writeln!(s, "{i}    \"name\": \"{}\",", e.name);
            let _ = writeln!(s, "{i}    \"labels\": {{{}}},", labels.join(", "));
            match &e.value {
                ValueSnapshot::Counter(n) => {
                    let _ = writeln!(s, "{i}    \"type\": \"counter\",");
                    let _ = writeln!(s, "{i}    \"value\": {n}");
                }
                ValueSnapshot::Gauge(v) => {
                    let _ = writeln!(s, "{i}    \"type\": \"gauge\",");
                    let _ = writeln!(s, "{i}    \"value\": {}", fmt_f64(*v));
                }
                ValueSnapshot::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let bs: Vec<String> = bounds.iter().map(|b| fmt_f64(*b)).collect();
                    let cs: Vec<String> = counts.iter().map(u64::to_string).collect();
                    let _ = writeln!(s, "{i}    \"type\": \"histogram\",");
                    let _ = writeln!(s, "{i}    \"bounds\": [{}],", bs.join(", "));
                    let _ = writeln!(s, "{i}    \"counts\": [{}],", cs.join(", "));
                    let _ = writeln!(s, "{i}    \"count\": {count},");
                    let _ = writeln!(s, "{i}    \"sum\": {}", fmt_f64(*sum));
                }
            }
            let comma = if ei + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(s, "{i}  }}{comma}");
        }
        let _ = write!(s, "{i}]");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{buckets, Metrics};

    fn sample() -> Metrics {
        let m = Metrics::new();
        m.inc("fastann_requests_total", &[("tenant", "0")], 3);
        m.gauge_max("fastann_queue_depth", &[], 5.0);
        m.observe("fastann_fanout", &[], 2.0, buckets::COUNT);
        m.observe("fastann_fanout", &[], 9.0, buckets::COUNT);
        m
    }

    #[test]
    fn prometheus_renders_types_buckets_and_escapes() {
        let p = sample().snapshot().to_prometheus();
        assert!(p.contains("# TYPE fastann_requests_total counter"));
        assert!(p.contains("fastann_requests_total{tenant=\"0\"} 3"));
        assert!(p.contains("# TYPE fastann_queue_depth gauge"));
        assert!(p.contains("fastann_queue_depth 5"));
        assert!(p.contains("# TYPE fastann_fanout histogram"));
        // cumulative buckets: le=2 holds 1, le=16 holds both, +Inf = count
        assert!(p.contains("fastann_fanout_bucket{le=\"2\"} 1"));
        assert!(p.contains("fastann_fanout_bucket{le=\"16\"} 2"));
        assert!(p.contains("fastann_fanout_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("fastann_fanout_sum 11"));
        assert!(p.contains("fastann_fanout_count 2"));
    }

    #[test]
    fn json_nests_under_an_indent() {
        let j = sample().snapshot().to_json("    ");
        assert!(j.starts_with("    ["));
        assert!(j.ends_with(']'));
        assert!(j.contains("\"name\": \"fastann_fanout\""));
        assert!(j.contains("\"type\": \"histogram\""));
        assert!(j.contains("\"labels\": {\"tenant\": \"0\"}"));
        let empty = Metrics::new().snapshot().to_json("");
        assert_eq!(empty, "[]");
    }

    #[test]
    fn label_values_are_escaped() {
        let m = Metrics::new();
        m.inc("c", &[("path", "a\"b\\c")], 1);
        let p = m.snapshot().to_prometheus();
        assert!(p.contains("c{path=\"a\\\"b\\\\c\"} 1"));
    }
}
