//! Chaos tests: the fault-tolerant query path under a seeded
//! [`FaultPlan`] — determinism, failover recovery, and degraded mode.

use fastann_core::{
    DistIndex, EngineConfig, QueryReport, RoutingPolicy, SearchOptions, SearchRequest, TAG_QUERY,
    TAG_RESULT,
};
use fastann_data::{ground_truth, synth, Distance, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_mpisim::{FaultPlan, Span, SpanKind, Trace};
use fastann_vptree::RouteConfig;

/// A small but non-trivial cluster: 8 cores spread over `nodes_of` cores
/// per node, miniature SIFT-like data.
fn build(nodes_of: usize, seed: u64) -> (VectorSet, VectorSet, DistIndex) {
    let data = synth::sift_like(3000, 16, seed);
    let queries = synth::queries_near(&data, 25, 0.02, seed + 1);
    let cfg = EngineConfig::new(8, nodes_of)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
        .with_seed(seed);
    let index = DistIndex::build(&data, cfg);
    (data, queries, index)
}

fn assert_results_well_formed(report: &QueryReport, k: usize, n: usize) {
    for r in &report.results {
        assert!(r.len() <= k);
        for w in r.windows(2) {
            assert!(w[0].dist <= w[1].dist, "results must stay sorted");
        }
        let mut ids: Vec<u32> = r.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), r.len(), "duplicate ids in result");
        assert!(ids.iter().all(|&id| (id as usize) < n));
    }
}

/// Spans in a scheduling-independent order (worker threads append to the
/// shared trace concurrently, so the raw vector order is not comparable).
fn sorted_spans(t: &Trace) -> Vec<(usize, u64, u64, u8, &'static str)> {
    let kind_ord = |k: SpanKind| match k {
        SpanKind::Compute => 0u8,
        SpanKind::Wait => 1,
        SpanKind::Comm => 2,
        SpanKind::Recovery => 3,
    };
    let mut v: Vec<_> = t
        .spans()
        .iter()
        .map(|s: &Span| {
            (
                s.rank,
                s.start.to_bits(),
                s.end.to_bits(),
                kind_ord(s.kind),
                s.label,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn fault_plan_none_is_a_true_noop() {
    let (_, queries, index) = build(2, 41);
    for one_sided in [true, false] {
        let opts = SearchOptions::new(10).with_one_sided(one_sided);
        let clean = SearchRequest::new(&index, &queries).opts(opts).run();
        let chaos = SearchRequest::new(&index, &queries)
            .opts(opts)
            .chaos(&FaultPlan::none())
            .run();
        // full-report equality: results AND every virtual-time cost field
        assert_eq!(
            clean, chaos,
            "FaultPlan::none() must change nothing (one_sided={one_sided})"
        );
        assert!(!chaos.any_degraded());
        assert_eq!(chaos.retries, 0);
        assert_eq!(chaos.failovers, 0);
    }
}

#[test]
fn same_seed_gives_identical_report_and_trace() {
    let (data, queries, index) = build(2, 43);
    let opts = SearchOptions::new(10)
        .with_routing(RoutingPolicy::Static(2))
        .with_timeout_ns(5e6);
    // a bit of everything: loss, delay, duplication, plus a mid-run stall
    let plan = FaultPlan::new(0xC0FFEE)
        .drop_msgs(None, None, Some(TAG_RESULT), 0.25)
        .drop_msgs(Some(0), None, Some(TAG_QUERY), 0.10)
        .delay_msgs(None, None, None, 0.20, 2e6)
        .duplicate_msgs(None, None, Some(TAG_RESULT), 0.15)
        .stall(2, 1e5, 3e6);

    let run = || {
        let trace = Trace::new();
        let report = SearchRequest::new(&index, &queries)
            .opts(opts)
            .chaos(&plan)
            .trace(&trace)
            .run();
        (report, sorted_spans(&trace))
    };
    let (r1, t1) = run();
    let (r2, t2) = run();
    assert_eq!(
        r1, r2,
        "same fault seed must reproduce the report bit-for-bit"
    );
    assert_eq!(t1, t2, "same fault seed must reproduce the trace");
    assert!(
        r1.retries > 0,
        "a 25% result-loss plan should force retries"
    );
    assert!(
        t1.iter().any(|s| s.3 == 3),
        "retries must be visible as Recovery spans in the trace"
    );
    assert_results_well_formed(&r1, 10, data.len());
}

#[test]
fn crashed_worker_with_replicas_recovers_full_recall() {
    // one core per node so a partition's r=2 workgroup spans two *nodes* —
    // crashing one leaves a live replica on the other
    let (data, queries, index) = build(1, 47);
    let opts = SearchOptions::new(10)
        .with_routing(RoutingPolicy::Static(2))
        .with_ef(128)
        .with_timeout_ns(5e6);
    let clean = SearchRequest::new(&index, &queries).opts(opts).run();
    // rank 3 = worker node 2 = core 2, dead from the first virtual instant
    let plan = FaultPlan::new(7).crash(3, 0.0);
    let report = SearchRequest::new(&index, &queries)
        .opts(opts)
        .chaos(&plan)
        .run();

    assert!(
        !report.any_degraded(),
        "with a live replica every probe must be recovered: {:?}",
        report.missing_partitions
    );
    assert!(
        report.retries > 0,
        "probes sent to the dead core must time out"
    );
    assert!(
        report.failovers > 0,
        "r=2 retries must move to the other replica"
    );
    assert_eq!(report.per_core_queries.len(), 8);

    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
    let rec_clean = ground_truth::recall_at_k(&clean.results, &gt, 10).mean;
    let rec_chaos = ground_truth::recall_at_k(&report.results, &gt, 10).mean;
    assert!(
        rec_chaos >= rec_clean - 0.01,
        "failover must preserve recall: clean {rec_clean:.3} vs chaos {rec_chaos:.3}"
    );
    assert_results_well_formed(&report, 10, data.len());
}

#[test]
fn crashed_worker_without_replicas_degrades_instead_of_hanging() {
    let (data, _, mut index) = build(1, 53);
    // route every query to every partition so each one provably touches
    // the dead core's (sole) partition
    index.config.route = RouteConfig {
        margin_frac: 1.0,
        max_partitions: 8,
    };
    let queries = synth::queries_near(&data, 12, 0.02, 54);
    let opts = SearchOptions::new(10)
        .with_timeout_ns(5e6)
        .with_max_retries(2);
    let plan = FaultPlan::new(11).crash(3, 0.0);
    let report = SearchRequest::new(&index, &queries)
        .opts(opts)
        .chaos(&plan)
        .run();

    assert_eq!(report.mean_fanout, 8.0, "full-fanout routing expected");
    assert!(report.any_degraded());
    assert_eq!(
        report.degraded_count(),
        12,
        "every query misses the dead partition"
    );
    for (qi, (&deg, &miss)) in report
        .degraded
        .iter()
        .zip(&report.missing_partitions)
        .enumerate()
    {
        assert!(deg, "query {qi} must be flagged degraded");
        assert_eq!(
            miss, 1,
            "query {qi} misses exactly the dead core's partition"
        );
    }
    assert!(report.retries > 0, "the retry budget must be spent first");
    assert_eq!(report.failovers, 0, "r=1 has no replica to fail over to");
    // partial top-k still well-formed (the other 7 partitions answered)
    assert_results_well_formed(&report, 10, data.len());
    assert!(report.results.iter().all(|r| !r.is_empty()));
}

#[test]
fn dropped_results_are_recovered_by_retry_on_the_same_owner() {
    let (data, queries, index) = build(2, 59);
    // lossy link from worker node 1 back to the master; no replication, so
    // recovery can only come from re-asking the same owner
    let plan = FaultPlan::new(99).drop_msgs(Some(2), Some(0), Some(TAG_RESULT), 0.5);
    let opts = SearchOptions::new(10)
        .with_timeout_ns(5e6)
        .with_max_retries(6);
    let report = SearchRequest::new(&index, &queries)
        .opts(opts)
        .chaos(&plan)
        .run();

    assert!(
        report.retries > 0,
        "half the node's results vanish: retries required"
    );
    assert_eq!(report.failovers, 0, "r=1 retries never change core");
    for (&deg, &miss) in report.degraded.iter().zip(&report.missing_partitions) {
        assert_eq!(deg, miss > 0, "degraded flag must mirror the missing count");
    }
    assert!(
        !report.any_degraded(),
        "six retries at 50% loss must recover every probe for this seed"
    );
    assert_results_well_formed(&report, 10, data.len());
}

#[test]
fn delayed_results_slow_the_batch_but_lose_nothing() {
    let (data, queries, index) = build(2, 61);
    // two-sided baseline so the vacuous run uses the same transport
    let opts = SearchOptions::new(10)
        .with_one_sided(false)
        .with_timeout_ns(5e6);
    // every result from every worker limps home 8 virtual ms late
    let plan = FaultPlan::new(5).delay_msgs(None, Some(0), Some(TAG_RESULT), 1.0, 8e6);
    let clean = SearchRequest::new(&index, &queries)
        .opts(opts)
        .chaos(&FaultPlan::none())
        .run();
    let slow = SearchRequest::new(&index, &queries)
        .opts(opts)
        .chaos(&plan)
        .run();
    assert!(!slow.any_degraded(), "delay is not loss");
    assert!(
        slow.total_ns > clean.total_ns + 8e6,
        "delays must show up in virtual time: {} vs {}",
        slow.total_ns,
        clean.total_ns
    );
    assert_eq!(clean.results, slow.results, "delayed answers still count");
    assert_results_well_formed(&slow, 10, data.len());
}
