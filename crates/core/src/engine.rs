//! Master–worker batch search — paper Section IV-B/C, Algorithms 3–5.
//!
//! Rank 0 is the master: it routes every query through the VP-tree skeleton
//! (`F(q)`), dispatches `(query, partition)` work items to worker nodes,
//! and merges results. Worker nodes model one MPI process per compute node
//! with `T` OpenMP threads: incoming queries are assigned to the
//! earliest-free virtual thread ([`VThreadPool`]) and answered with a local
//! HNSW search whose *measured* distance-evaluation count is charged to the
//! virtual clock.
//!
//! Two result paths (the paper's Section IV-C1 optimisation):
//! * **two-sided** — workers `Isend` results; the master receives and
//!   merges each one, paying a per-message receive overhead (the
//!   scalability bottleneck the paper observed);
//! * **one-sided** — workers deposit results into the master's RMA window
//!   with `Get_accumulate`; the master's CPU is untouched until a final
//!   synchronisation.
//!
//! Load balancing by replication (Section IV-C2, Algorithm 5): partition
//! `i`'s workgroup is cores `{i, i+1, …, i+r_i−1 mod P}`. The slot chosen
//! within the workgroup follows [`crate::RoutingPolicy`]: round-robin (the
//! paper's dispatch) or power-of-two-choices over the deterministic
//! per-core dispatched-probe count, with per-partition replica counts
//! supplied by an adaptive controller through
//! [`SearchRequest::replicas`].

use std::collections::HashSet;

use bytes::{Bytes, BytesMut};
use fastann_data::{Neighbor, TopK, VectorSet};
use fastann_hnsw::SearchScratch;
use fastann_mpisim::{
    wire, Cluster, FaultPlan, Rank, SchedPerturb, SimConfig, SpanKind, Topology, Trace,
    VThreadPool, Window,
};
use fastann_obs::{buckets, Metrics, Stage};
use rayon::prelude::*;

use crate::build::DistIndex;
use crate::config::SearchOptions;
use crate::router::ReplicaDispatcher;
use crate::stats::QueryReport;
use crate::tags;

/// Master → worker: one `(query, partition)` work item. Public so fault
/// plans (chaos tests) can target the engine's data-plane traffic by tag.
pub const TAG_QUERY: u64 = 201;
/// Worker → master: one answered probe (two-sided result path).
pub const TAG_RESULT: u64 = 202;
/// Master → worker: batch over, shut down. Protected from fault injection
/// on the chaos path.
pub const TAG_END: u64 = 203;
/// Worker → master: all one-sided deposits posted.
pub const TAG_DONE: u64 = 204;
/// Fault-tolerant path: master asks a node to acknowledge once every query
/// queued before this marker has been served (or dropped). Protected.
pub const TAG_FLUSH: u64 = 205;
/// Fault-tolerant path: the worker's answer to [`TAG_FLUSH`]. Protected.
pub const TAG_FLUSH_ACK: u64 = 206;

/// Virtual cost (ns) of merging one returned neighbour at the master.
pub(crate) const MERGE_NS_PER_NEIGHBOR: f64 = 4.0;

/// Single dispatch point behind [`SearchRequest`]: a non-vacuous fault
/// plan takes the fault-tolerant chaos path, anything else the fault-free
/// path — so `plan: None` and a vacuous plan are provably equivalent,
/// costs included.
///
/// `replicas` is an optional per-partition replica-count snapshot (the
/// adaptive controller's [`crate::ReplicaMap`] view); absent, every
/// partition holds the policy's base replica count.
pub(crate) fn dispatch(
    index: &DistIndex,
    queries: &VectorSet,
    opts: &SearchOptions,
    replicas: Option<&[usize]>,
    plan: Option<&FaultPlan>,
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
) -> QueryReport {
    let counts = effective_replicas(index, opts, replicas);
    match plan {
        Some(p) if !p.is_vacuous() => {
            search_batch_chaos_inner(index, queries, opts, &counts, p, trace, obs)
        }
        _ => search_batch_inner(index, queries, opts, &counts, trace, obs),
    }
}

/// Resolves the per-partition replica counts a batch dispatches with:
/// the caller-provided snapshot when present, else the policy's uniform
/// base. Validates shape and bounds once, for both master and workers.
fn effective_replicas(
    index: &DistIndex,
    opts: &SearchOptions,
    replicas: Option<&[usize]>,
) -> Vec<usize> {
    opts.routing.validate();
    let p_cores = index.config.n_cores;
    assert!(
        opts.routing.max_replicas() <= p_cores,
        "replication factor exceeds core count"
    );
    match replicas {
        Some(c) => {
            assert_eq!(
                c.len(),
                index.n_partitions(),
                "replica map must cover every partition"
            );
            assert!(
                c.iter()
                    .all(|&r| r >= 1 && r <= opts.routing.max_replicas().max(1)),
                "replica counts must be within 1..=policy max"
            );
            c.to_vec()
        }
        None => vec![opts.routing.base_replicas(); index.n_partitions().max(p_cores)],
    }
}

/// The unified span layer: one call records a query-path phase into the
/// Gantt [`Trace`] (when attached) and into the `fastann_span_ns{stage}`
/// histogram of the [`Metrics`] registry (when attached), under the same
/// [`Stage::label`].
fn span(
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
    rank: usize,
    start: f64,
    end: f64,
    kind: SpanKind,
    stage: Stage,
) {
    if let Some(t) = trace {
        t.record(rank, start, end, kind, stage.label());
    }
    if let Some(m) = obs {
        m.span(stage, start, end);
    }
}

fn search_batch_chaos_inner(
    index: &DistIndex,
    queries: &VectorSet,
    opts: &SearchOptions,
    counts: &[usize],
    plan: &FaultPlan,
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
) -> QueryReport {
    if plan.is_vacuous() {
        // no injected faults — take the exact fault-free path so that
        // FaultPlan::none() provably changes nothing, costs included
        return search_batch_inner(index, queries, opts, counts, trace, obs);
    }
    assert!(!queries.is_empty(), "empty query batch");
    assert_eq!(queries.dim(), index.dim(), "query dimension mismatch");
    let n_nodes = index.config.n_nodes();
    // the control plane (shutdown + flush handshake) is the failure-detection
    // oracle; the central tag registry says which tags that is
    let protected = plan.clone().protect(&tags::protected_values("engine"));
    let sim = SimConfig::new(n_nodes + 1)
        .topology(Topology::one_rank_per_node())
        .net(index.config.net)
        .cost(index.config.cost)
        .fault(protected)
        .sched(SchedPerturb::seeded(opts.sched_seed));
    let cluster = Cluster::new(sim);

    let (outs, conservation) = cluster.run_checked(|rank| {
        if rank.rank() == 0 {
            RankOut::Master(Box::new(master_chaos(
                rank, index, queries, opts, counts, trace, obs,
            )))
        } else {
            RankOut::Worker(worker_chaos(rank, index, opts, counts, trace, obs))
        }
    });
    // Even under injected faults the protocol must account for every
    // message: fault-plan drops are ledgered, so anything left over in a
    // mailbox at shutdown is a protocol bug.
    if cfg!(debug_assertions) {
        conservation.assert_clean();
    }

    let mut report: Option<QueryReport> = None;
    let mut node_busy = vec![0f64; n_nodes];
    let mut node_comm = vec![0f64; n_nodes];
    let mut total_ndist = 0u64;
    for out in outs {
        match out {
            RankOut::Master(r) => report = Some(*r),
            RankOut::Worker(w) => {
                node_busy[w.node] = w.busy_ns;
                node_comm[w.node] = w.comm_cpu_ns;
                total_ndist += w.ndist;
            }
        }
    }
    let mut report = report.expect("master produced a report");
    report.node_busy_ns = node_busy;
    report.node_comm_cpu_ns = node_comm;
    report.total_ndist = total_ndist;
    report
}

fn search_batch_inner(
    index: &DistIndex,
    queries: &VectorSet,
    opts: &SearchOptions,
    counts: &[usize],
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
) -> QueryReport {
    assert!(!queries.is_empty(), "empty query batch");
    assert_eq!(queries.dim(), index.dim(), "query dimension mismatch");
    let n_nodes = index.config.n_nodes();
    let sim = SimConfig::new(n_nodes + 1)
        .topology(Topology::one_rank_per_node())
        .net(index.config.net)
        .cost(index.config.cost)
        .sched(SchedPerturb::seeded(opts.sched_seed));
    let cluster = Cluster::new(sim);

    let (outs, conservation) = cluster.run_checked(|rank| {
        if rank.rank() == 0 {
            RankOut::Master(Box::new(master(
                rank, index, queries, opts, counts, trace, obs,
            )))
        } else {
            RankOut::Worker(worker(rank, index, opts, counts, trace, obs))
        }
    });
    if cfg!(debug_assertions) {
        conservation.assert_clean();
    }

    let mut report: Option<QueryReport> = None;
    let mut node_busy = vec![0f64; n_nodes];
    let mut node_comm = vec![0f64; n_nodes];
    let mut total_ndist = 0u64;
    for out in outs {
        match out {
            RankOut::Master(r) => report = Some(*r),
            RankOut::Worker(w) => {
                node_busy[w.node] = w.busy_ns;
                node_comm[w.node] = w.comm_cpu_ns;
                total_ndist += w.ndist;
            }
        }
    }
    let mut report = report.expect("master produced a report");
    report.node_busy_ns = node_busy;
    report.node_comm_cpu_ns = node_comm;
    report.total_ndist = total_ndist;
    report
}

enum RankOut {
    Master(Box<QueryReport>),
    Worker(WorkerOut),
}

struct WorkerOut {
    node: usize,
    busy_ns: f64,
    comm_cpu_ns: f64,
    ndist: u64,
}

/// Encodes a work item: query id, target partition, query vector.
fn encode_query(qid: u32, partition: u32, q: &[f32]) -> Bytes {
    let mut b = BytesMut::with_capacity(12 + q.len() * 4);
    wire::put_u32(&mut b, qid);
    wire::put_u32(&mut b, partition);
    wire::put_f32_slice(&mut b, q);
    b.freeze()
}

fn master(
    rank: &mut Rank,
    index: &DistIndex,
    queries: &VectorSet,
    opts: &SearchOptions,
    counts: &[usize],
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
) -> QueryReport {
    let world = rank.world();
    let p_cores = index.config.n_cores;
    let t_cores = index.config.cores_per_node;
    let n_nodes = index.config.n_nodes();
    let nq = queries.len();
    let k = opts.k;
    let dim = index.dim();

    // One-sided path: expose a window of per-query result slots.
    let window: Option<Window<TopK>> = if opts.one_sided {
        Some(Window::create(rank, &world, 0, nq, |_| TopK::new(k)))
    } else {
        // workers still participate in the collective create decision via a
        // barrier so both paths start from synchronised clocks
        world.barrier(rank);
        None
    };
    if window.is_some() {
        world.barrier(rank);
    }

    let start_ns = rank.now();
    let route_cost_per_dist = index.config.cost.dist_ns(dim);

    // Algorithm 5 state: per-workgroup slot choice under the configured
    // routing policy (round-robin or power-of-two-choices).
    let mut dispatcher = ReplicaDispatcher::with_policy(p_cores, opts.routing, counts);
    let mut per_core_queries = vec![0u64; p_cores];
    let mut per_partition_probes = vec![0u64; index.n_partitions()];
    let mut tops: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
    let mut route_ns = 0f64;
    let mut fanout_total = 0u64;
    let mut pending_total = 0u64;
    let mut per_node_pending = vec![0u64; n_nodes];

    for qi in 0..nq {
        let q = queries.get(qi);
        let (parts, ndist) = index.router.route(q, &index.config.route);
        let c = ndist as f64 * route_cost_per_dist;
        rank.charge(c);
        route_ns += c;
        fanout_total += parts.len() as u64;
        if let Some(m) = obs {
            m.observe(
                "fastann_router_fanout",
                &[],
                parts.len() as f64,
                buckets::COUNT,
            );
        }
        for d in parts {
            // workgroup W_d = {d, d+1, …, d+r-1 mod P}; the slot within it
            // follows the routing policy
            let (core, _slot) = dispatcher.next(d, qi as u64);
            per_core_queries[core] += 1;
            per_partition_probes[d as usize] += 1;
            let node = core / t_cores;
            rank.send_bytes(1 + node, TAG_QUERY, encode_query(qi as u32, d, q));
            pending_total += 1;
            per_node_pending[node] += 1;
        }
    }
    for nodej in 0..n_nodes {
        rank.send_bytes(1 + nodej, TAG_END, Bytes::new());
    }
    if let Some(m) = obs {
        m.inc("fastann_engine_queries_total", &[], nq as u64);
        m.inc("fastann_engine_probes_total", &[], pending_total);
        m.inc(
            "fastann_routing_decisions_total",
            &[("policy", opts.routing.label())],
            pending_total,
        );
    }
    span(
        trace,
        obs,
        0,
        start_ns,
        rank.now(),
        SpanKind::Compute,
        Stage::Route,
    );
    let collect_start = rank.now();

    // Collection folds message arrivals into the master clock, so it must
    // visit nodes in a fixed order: a wildcard-source receive would pick
    // whichever message the OS scheduler enqueued first and make the
    // virtual-time accounting differ from run to run. Per-source receives
    // in rank order keep the whole simulation deterministic.
    let mut result_bytes = 0u64;
    if let Some(win) = &window {
        // One-sided: wait only for per-worker completion signals, then
        // synchronise with the deposited updates.
        for j in 0..n_nodes {
            let _ = rank.recv(Some(1 + j), Some(TAG_DONE));
        }
        win.owner_sync(rank);
        for (qi, top) in tops.iter_mut().enumerate() {
            win.read(qi, |t| top.merge(t));
            rank.charge(k as f64 * 1.0);
        }
        result_bytes = pending_total * (k as u64) * 8;
        if let Some(m) = obs {
            // one window read-merge per query slot
            m.inc(
                "fastann_master_merge_ops_total",
                &[("path", "one_sided")],
                nq as u64,
            );
        }
    } else {
        // Two-sided: receive and merge every single result message; the
        // master knows exactly how many answers each node owes it.
        for (j, &owed) in per_node_pending.iter().enumerate() {
            for _ in 0..owed {
                let msg = rank.recv(Some(1 + j), Some(TAG_RESULT));
                let mut payload = msg.payload;
                result_bytes += payload.len() as u64;
                let qi = wire::get_u32(&mut payload) as usize;
                let pairs = wire::get_neighbors(&mut payload);
                rank.charge(pairs.len() as f64 * MERGE_NS_PER_NEIGHBOR);
                for (id, d) in pairs {
                    tops[qi].push(Neighbor::new(id, d));
                }
            }
        }
        if let Some(m) = obs {
            // one receive-and-merge per answered probe
            m.inc(
                "fastann_master_merge_ops_total",
                &[("path", "two_sided")],
                pending_total,
            );
        }
    }

    if let Some(m) = obs {
        m.inc("fastann_engine_result_bytes_total", &[], result_bytes);
    }
    span(
        trace,
        obs,
        0,
        collect_start,
        rank.now(),
        SpanKind::Wait,
        Stage::Collect,
    );
    let stats = rank.stats();
    QueryReport {
        results: tops.into_iter().map(TopK::into_sorted).collect(),
        total_ns: rank.now() - start_ns,
        master_route_ns: route_ns,
        master_comm_cpu_ns: stats.send_cpu_ns + stats.recv_cpu_ns + stats.rma_cpu_ns,
        master_wait_ns: stats.wait_ns,
        per_core_queries,
        per_partition_probes,
        mean_fanout: fanout_total as f64 / nq as f64,
        node_busy_ns: Vec::new(),     // filled by the caller
        node_comm_cpu_ns: Vec::new(), // filled by the caller
        total_ndist: 0,               // filled by the caller
        result_bytes,
        degraded: vec![false; nq],
        missing_partitions: vec![0; nq],
        retries: 0,
        failovers: 0,
    }
}

/// One decoded data-plane query a worker has accepted but not yet answered.
/// The immediate path answers it on the spot; the deferred-batch path
/// (`threads > 1`) queues these until `TAG_END` and searches them in
/// parallel.
struct PendingQuery {
    qid: u32,
    part: usize,
    q: Vec<f32>,
    arrival: f64,
}

/// The mutable worker state needed to account for and post one answered
/// query. Shared by the immediate and deferred paths so both produce the
/// exact same sequence of virtual-time effects: every timestamp is a
/// function of the `emit` call order alone, never of when the search ran in
/// real time.
struct WorkerEmit<'a> {
    rank: &'a mut Rank,
    pool: &'a mut VThreadPool,
    window: &'a Option<Window<TopK>>,
    trace: Option<&'a Trace>,
    obs: Option<&'a Metrics>,
}

impl WorkerEmit<'_> {
    /// Charges the virtual thread pool, records the span and the
    /// local-search metrics, translates local row ids to global ids, and
    /// posts the answer (RMA deposit or two-sided message) at its virtual
    /// completion time. Returns that completion time.
    fn emit(
        &mut self,
        index: &DistIndex,
        item: &PendingQuery,
        local: &[Neighbor],
        stats: fastann_hnsw::SearchStats,
    ) -> f64 {
        let partition = &index.partitions[item.part];
        let cost = index.config.cost.dists_ns(stats.ndist, index.dim());
        let done_at = self.pool.assign(item.arrival, cost);
        span(
            self.trace,
            self.obs,
            self.rank.rank(),
            done_at - cost,
            done_at,
            SpanKind::Compute,
            Stage::LocalSearch,
        );
        if let Some(m) = self.obs {
            record_local_search(m, item.part, &stats, cost);
        }
        // translate to global ids
        let pairs: Vec<(u32, f32)> = local
            .iter()
            .map(|n| (partition.global_ids[n.id as usize], n.dist))
            .collect();
        match self.window {
            Some(win) => {
                win.accumulate_at(
                    self.rank,
                    item.qid as usize,
                    pairs.len() * 8 + 8,
                    done_at,
                    |t| {
                        for &(id, d) in &pairs {
                            t.push(Neighbor::new(id, d));
                        }
                    },
                );
                if let Some(m) = self.obs {
                    m.inc("fastann_rma_deposits_total", &[], 1);
                }
            }
            None => {
                let mut b = BytesMut::new();
                wire::put_u32(&mut b, item.qid);
                wire::put_neighbors(&mut b, &pairs);
                self.rank.send_bytes_at(0, TAG_RESULT, b.freeze(), done_at);
            }
        }
        done_at
    }
}

/// Folds one answered probe's local-search accounting into the registry:
/// the HNSW work histograms and the per-partition virtual service time.
fn record_local_search(m: &Metrics, part: usize, stats: &fastann_hnsw::SearchStats, cost_ns: f64) {
    m.observe("fastann_hnsw_ndist", &[], stats.ndist as f64, buckets::WORK);
    // quantized vs exact split of the distance work, plus the re-rank pool
    // sizes — the counters the recall-delta gate and dashboards read
    m.inc("fastann_dists_quant_total", &[], stats.ndist_quant);
    m.inc(
        "fastann_dists_exact_total",
        &[],
        stats.ndist - stats.ndist_quant,
    );
    if stats.rerank > 0 {
        m.observe(
            "fastann_rerank_pool",
            &[],
            stats.rerank as f64,
            buckets::COUNT,
        );
    }
    m.observe("fastann_hnsw_hops", &[], stats.hops as f64, buckets::COUNT);
    // diverse entry-set consumption: how many multi-basin seeds the query
    // actually injected into its descent (DESIGN.md §13)
    m.inc("fastann_hnsw_entry_seeds_total", &[], stats.entry_seeds);
    m.observe(
        "fastann_hnsw_heap_pushes",
        &[],
        stats.heap_pushes as f64,
        buckets::WORK,
    );
    m.observe(
        "fastann_hnsw_ef_churn",
        &[],
        stats.ef_churn as f64,
        buckets::WORK,
    );
    let part = part.to_string();
    m.observe(
        "fastann_worker_service_ns",
        &[("partition", &part)],
        cost_ns,
        buckets::NS,
    );
}

/// Folds a worker's whole-batch accounting into the registry: how many
/// probes it received and the peak backlog of its virtual thread pool.
/// `served` holds one `(arrival, completion)` pair per answered probe —
/// virtual times, so the fold is identical in immediate and deferred-batch
/// modes and across real thread counts.
fn record_worker_batch(m: &Metrics, served: &[(f64, f64)]) {
    m.observe(
        "fastann_worker_batch_size",
        &[],
        served.len() as f64,
        buckets::COUNT,
    );
    let mut depth_max = 0usize;
    for (i, &(arrival, _)) in served.iter().enumerate() {
        // probes accepted earlier and still unfinished when this one arrives
        let depth = 1 + served[..i].iter().filter(|&&(_, d)| d > arrival).count();
        depth_max = depth_max.max(depth);
    }
    m.gauge_max("fastann_worker_queue_depth", &[], depth_max as f64);
}

/// Per-partition serveability mask for `node`: partition `p` is replicated
/// on cores `(p + i) mod P` for `i < counts[p]`, and split-created
/// partitions (id ≥ P) wrap onto the existing cores the same way the
/// dispatcher does. `counts` comes from [`effective_replicas`] — identical
/// on master and workers, so the mask always covers the dispatch targets.
fn serveable_partitions(
    index: &DistIndex,
    node: usize,
    t_cores: usize,
    p_cores: usize,
    counts: &[usize],
) -> Vec<bool> {
    let mut serveable = vec![false; index.n_partitions()];
    for (p, s) in serveable.iter_mut().enumerate() {
        let r = counts.get(p).copied().unwrap_or(1).min(p_cores);
        *s = (0..r).any(|i| {
            let c = (p + i) % p_cores;
            c / t_cores == node
        });
    }
    serveable
}

fn worker(
    rank: &mut Rank,
    index: &DistIndex,
    opts: &SearchOptions,
    counts: &[usize],
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
) -> WorkerOut {
    let world = rank.world();
    let node = rank.rank() - 1;
    let t_cores = index.config.cores_per_node;
    let p_cores = index.config.n_cores;
    let k = opts.k;

    let window: Option<Window<TopK>> = if opts.one_sided {
        Some(Window::create(rank, &world, 0, 1, |_| TopK::new(k)))
    } else {
        world.barrier(rank);
        None
    };
    // NB: window slot count is decided by the master's create call — the
    // collective transports the master's Arc, so the `n_slots` argument on
    // workers is ignored by construction.
    if window.is_some() {
        world.barrier(rank);
    }

    // Partitions this node can serve: partition p is replicated on cores
    // (p+i) mod P for i < counts[p]. Split-created partitions (id ≥ P) wrap
    // onto the existing cores, so the table spans every partition, not P.
    let serveable = serveable_partitions(index, node, t_cores, p_cores, counts);

    let mut pool = VThreadPool::new(t_cores, 0.0);
    pool.set_perturb(rank.sched_perturb());
    let mut scratch = SearchScratch::default();
    let mut ndist_total = 0u64;
    let threads = index.config.threads;
    let mut queued: Vec<PendingQuery> = Vec::new();
    let mut served: Vec<(f64, f64)> = Vec::new();

    loop {
        let msg = rank.recv(Some(0), None);
        match msg.tag {
            TAG_END => break,
            TAG_QUERY => {
                let arrival = msg.arrival;
                let mut payload = msg.payload;
                let qid = wire::get_u32(&mut payload);
                let part = wire::get_u32(&mut payload) as usize;
                let q = wire::get_f32_vec(&mut payload);
                assert!(
                    serveable[part],
                    "node {node} asked to serve partition {part} it does not hold"
                );
                let item = PendingQuery {
                    qid,
                    part,
                    q,
                    arrival,
                };
                if threads > 1 {
                    // Deferred-batch mode ("OpenMP" workers): accept the
                    // whole batch first, fan the searches out across real
                    // threads after TAG_END.
                    queued.push(item);
                } else {
                    let (local, stats) = index.partitions[item.part].index.search_detailed_opts(
                        &item.q,
                        opts,
                        &mut scratch,
                    );
                    ndist_total += stats.ndist;
                    let done_at = WorkerEmit {
                        rank: &mut *rank,
                        pool: &mut pool,
                        window: &window,
                        trace,
                        obs,
                    }
                    .emit(index, &item, &local, stats);
                    served.push((item.arrival, done_at));
                }
            }
            t => panic!("worker node {node}: unexpected tag {t}"),
        }
    }

    // Deferred-batch mode: search every queued query on the real thread
    // pool (per-worker scratch = per-thread distance counters), then replay
    // the virtual-time accounting and result posting in arrival order.
    // Searches read an immutable index, so results and per-query ndist are
    // schedule-independent, and the replay makes every `pool.assign` /
    // `send_bytes_at` call happen in the same order with the same operands
    // as the immediate path — the whole report stays bit-identical to
    // `threads = 1`.
    if !queued.is_empty() {
        let answers: Vec<(Vec<Neighbor>, fastann_hnsw::SearchStats)> =
            rayon::with_num_threads(threads, || {
                queued
                    .par_iter()
                    .map_init(SearchScratch::default, |scratch, item| {
                        index.partitions[item.part]
                            .index
                            .search_detailed_opts(&item.q, opts, scratch)
                    })
                    .collect()
            });
        for (item, (local, stats)) in queued.iter().zip(answers) {
            ndist_total += stats.ndist;
            let done_at = WorkerEmit {
                rank: &mut *rank,
                pool: &mut pool,
                window: &window,
                trace,
                obs,
            }
            .emit(index, item, &local, stats);
            served.push((item.arrival, done_at));
        }
    }

    if let Some(m) = obs {
        record_worker_batch(m, &served);
    }

    if window.is_some() {
        // All deposits for this node are posted by its pool makespan.
        rank.send_bytes_at(0, TAG_DONE, Bytes::new(), pool.makespan());
    }

    let stats = rank.stats();
    WorkerOut {
        node,
        busy_ns: pool.busy(),
        comm_cpu_ns: stats.send_cpu_ns + stats.recv_cpu_ns + stats.rma_cpu_ns,
        ndist: ndist_total,
    }
}

/// One dispatched `(query, partition)` probe awaiting its answer.
struct Probe {
    qid: u32,
    part: u32,
    /// Workgroup slot of the first dispatch (failovers derive from it).
    slot: usize,
    /// Retries so far; attempt `a` targets workgroup slot `(slot + a) % r`.
    attempt: usize,
    /// Virtual time at which this probe counts as timed out.
    deadline: f64,
}

/// Chaos-path result message: query id, answered partition, neighbours.
/// (The fault-free path omits the partition — here the master needs it to
/// de-duplicate answers that arrive twice, e.g. a duplicated message or a
/// retry racing its slow original.)
fn encode_result(qid: u32, part: u32, pairs: &[(u32, f32)]) -> Bytes {
    let mut b = BytesMut::new();
    wire::put_u32(&mut b, qid);
    wire::put_u32(&mut b, part);
    wire::put_neighbors(&mut b, pairs);
    b.freeze()
}

fn master_chaos(
    rank: &mut Rank,
    index: &DistIndex,
    queries: &VectorSet,
    opts: &SearchOptions,
    counts: &[usize],
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
) -> QueryReport {
    let world = rank.world();
    let p_cores = index.config.n_cores;
    let t_cores = index.config.cores_per_node;
    let n_nodes = index.config.n_nodes();
    let nq = queries.len();
    let k = opts.k;
    let dim = index.dim();

    world.barrier(rank); // synchronised clock origin, as on the fault-free path

    let start_ns = rank.now();
    let route_cost_per_dist = index.config.cost.dist_ns(dim);

    let mut dispatcher = ReplicaDispatcher::with_policy(p_cores, opts.routing, counts);
    let mut per_core_queries = vec![0u64; p_cores];
    let mut per_partition_probes = vec![0u64; index.n_partitions()];
    let mut tops: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
    let mut route_ns = 0f64;
    let mut fanout_total = 0u64;
    let mut outstanding: Vec<Probe> = Vec::new();

    for qi in 0..nq {
        let q = queries.get(qi);
        let (parts, ndist) = index.router.route(q, &index.config.route);
        let c = ndist as f64 * route_cost_per_dist;
        rank.charge(c);
        route_ns += c;
        fanout_total += parts.len() as u64;
        if let Some(m) = obs {
            m.observe(
                "fastann_router_fanout",
                &[],
                parts.len() as f64,
                buckets::COUNT,
            );
        }
        for d in parts {
            let (core, slot) = dispatcher.next(d, qi as u64);
            per_core_queries[core] += 1;
            per_partition_probes[d as usize] += 1;
            rank.send_bytes(1 + core / t_cores, TAG_QUERY, encode_query(qi as u32, d, q));
            outstanding.push(Probe {
                qid: qi as u32,
                part: d,
                slot,
                attempt: 0,
                deadline: rank.now() + opts.timeout_ns,
            });
        }
    }
    if let Some(m) = obs {
        m.inc("fastann_engine_queries_total", &[], nq as u64);
        m.inc("fastann_engine_probes_total", &[], fanout_total);
        m.inc(
            "fastann_routing_decisions_total",
            &[("policy", opts.routing.label())],
            fanout_total,
        );
    }
    span(
        trace,
        obs,
        0,
        start_ns,
        rank.now(),
        SpanKind::Compute,
        Stage::Route,
    );

    // Answers already merged, keyed (query, partition) — a second answer
    // for the same probe (duplicate fault, retry racing its original) is
    // discarded instead of double-merged.
    let mut fulfilled: HashSet<(u32, u32)> = HashSet::new();
    let mut result_bytes = 0u64;
    let mut retries = 0u64;
    let mut failovers = 0u64;
    let mut merge_ops = 0u64;
    let mut timeout_waits = 0u64;
    let mut round = 0usize;

    loop {
        // Round barrier: flush every node, then drain each node's mailbox
        // subsequence *in rank order* until its ack. Per-source message
        // order is the sender's program order — deterministic — so folding
        // arrival times into the master clock in this fixed order keeps the
        // whole run independent of OS thread scheduling.
        let drain_start = rank.now();
        for j in 0..n_nodes {
            rank.send_bytes(1 + j, TAG_FLUSH, Bytes::new());
        }
        for j in 0..n_nodes {
            loop {
                let msg = rank.recv(Some(1 + j), None);
                match msg.tag {
                    TAG_FLUSH_ACK => break,
                    TAG_RESULT => {
                        let mut payload = msg.payload;
                        result_bytes += payload.len() as u64;
                        let qid = wire::get_u32(&mut payload);
                        let part = wire::get_u32(&mut payload);
                        let pairs = wire::get_neighbors(&mut payload);
                        if fulfilled.insert((qid, part)) {
                            merge_ops += 1;
                            rank.charge(pairs.len() as f64 * MERGE_NS_PER_NEIGHBOR);
                            for (id, d) in pairs {
                                tops[qid as usize].push(Neighbor::new(id, d));
                            }
                        }
                    }
                    t => panic!("master: unexpected tag {t} from node {j}"),
                }
            }
        }
        span(
            trace,
            obs,
            0,
            drain_start,
            rank.now(),
            SpanKind::Wait,
            Stage::Collect,
        );

        outstanding.retain(|p| !fulfilled.contains(&(p.qid, p.part)));
        if outstanding.is_empty() || round == opts.max_retries {
            break;
        }
        round += 1;

        // Anything still outstanding has been flushed past on its node: it
        // was lost (or its owner crashed). Honour the timeout contract —
        // a probe may only be re-dispatched once its deadline has passed.
        let max_deadline = outstanding.iter().fold(f64::MIN, |m, p| m.max(p.deadline));
        if max_deadline > rank.now() {
            let t0 = rank.now();
            rank.wait_until(max_deadline);
            timeout_waits += 1;
            span(
                trace,
                obs,
                0,
                t0,
                rank.now(),
                SpanKind::Recovery,
                Stage::Timeout,
            );
        }
        for p in outstanding.iter_mut() {
            let prev_core = dispatcher.failover(p.part, p.slot, p.attempt);
            p.attempt += 1;
            let core = dispatcher.failover(p.part, p.slot, p.attempt);
            retries += 1;
            if core != prev_core {
                failovers += 1;
            }
            per_core_queries[core] += 1;
            per_partition_probes[p.part as usize] += 1;
            let t0 = rank.now();
            rank.send_bytes(
                1 + core / t_cores,
                TAG_QUERY,
                encode_query(p.qid, p.part, queries.get(p.qid as usize)),
            );
            p.deadline = rank.now() + opts.timeout_ns;
            let stage = if core != prev_core {
                Stage::Failover
            } else {
                Stage::Retry
            };
            span(trace, obs, 0, t0, rank.now(), SpanKind::Recovery, stage);
        }
    }
    for j in 0..n_nodes {
        rank.send_bytes(1 + j, TAG_END, Bytes::new());
    }

    // Degraded accounting: whatever survived the retry budget unanswered.
    let mut missing_partitions = vec![0u32; nq];
    for p in &outstanding {
        missing_partitions[p.qid as usize] += 1;
    }
    let degraded: Vec<bool> = missing_partitions.iter().map(|&m| m > 0).collect();

    if let Some(m) = obs {
        m.inc(
            "fastann_master_merge_ops_total",
            &[("path", "two_sided")],
            merge_ops,
        );
        m.inc("fastann_engine_result_bytes_total", &[], result_bytes);
        m.inc("fastann_chaos_retries_total", &[], retries);
        m.inc("fastann_chaos_failovers_total", &[], failovers);
        m.inc("fastann_chaos_timeout_waits_total", &[], timeout_waits);
        m.inc(
            "fastann_chaos_degraded_total",
            &[],
            degraded.iter().filter(|&&d| d).count() as u64,
        );
    }

    let stats = rank.stats();
    QueryReport {
        results: tops.into_iter().map(TopK::into_sorted).collect(),
        total_ns: rank.now() - start_ns,
        master_route_ns: route_ns,
        master_comm_cpu_ns: stats.send_cpu_ns + stats.recv_cpu_ns + stats.rma_cpu_ns,
        master_wait_ns: stats.wait_ns,
        per_core_queries,
        per_partition_probes,
        mean_fanout: fanout_total as f64 / nq as f64,
        node_busy_ns: Vec::new(),     // filled by the caller
        node_comm_cpu_ns: Vec::new(), // filled by the caller
        total_ndist: 0,               // filled by the caller
        result_bytes,
        degraded,
        missing_partitions,
        retries,
        failovers,
    }
}

fn worker_chaos(
    rank: &mut Rank,
    index: &DistIndex,
    opts: &SearchOptions,
    counts: &[usize],
    trace: Option<&Trace>,
    obs: Option<&Metrics>,
) -> WorkerOut {
    let world = rank.world();
    let node = rank.rank() - 1;
    let t_cores = index.config.cores_per_node;
    let p_cores = index.config.n_cores;
    let dim = index.dim();

    world.barrier(rank);

    // Partitions this node can serve (identical to the fault-free path).
    let serveable = serveable_partitions(index, node, t_cores, p_cores, counts);

    let mut pool = VThreadPool::new(t_cores, 0.0);
    pool.set_perturb(rank.sched_perturb());
    let mut scratch = SearchScratch::default();
    let mut ndist_total = 0u64;
    let mut served: Vec<(f64, f64)> = Vec::new();

    loop {
        let msg = rank.recv(Some(0), None);
        match msg.tag {
            TAG_END => break,
            TAG_FLUSH => {
                // Control plane: always answered, even by a crashed rank —
                // the master's failure detection relies on it. Ack once the
                // search pool has finished everything queued so far.
                let at = pool.makespan().max(rank.now());
                rank.send_bytes_at(0, TAG_FLUSH_ACK, Bytes::new(), at);
            }
            TAG_QUERY => {
                if rank.is_crashed() {
                    // fail-stop data plane: the query is swallowed; the
                    // master's timeout + failover machinery recovers it
                    continue;
                }
                let arrival = msg.arrival;
                let mut payload = msg.payload;
                let qid = wire::get_u32(&mut payload);
                let part = wire::get_u32(&mut payload) as usize;
                let q = wire::get_f32_vec(&mut payload);
                assert!(
                    serveable[part],
                    "node {node} asked to serve partition {part} it does not hold"
                );
                let partition = &index.partitions[part];
                let (local, sstats) = partition.index.search_detailed_opts(&q, opts, &mut scratch);
                ndist_total += sstats.ndist;
                let cost = index.config.cost.dists_ns(sstats.ndist, dim);
                let done_at = pool.assign(arrival, cost);
                span(
                    trace,
                    obs,
                    rank.rank(),
                    done_at - cost,
                    done_at,
                    SpanKind::Compute,
                    Stage::LocalSearch,
                );
                if let Some(m) = obs {
                    record_local_search(m, part, &sstats, cost);
                }
                served.push((arrival, done_at));
                let pairs: Vec<(u32, f32)> = local
                    .iter()
                    .map(|n| (partition.global_ids[n.id as usize], n.dist))
                    .collect();
                rank.send_bytes_at(
                    0,
                    TAG_RESULT,
                    encode_result(qid, part as u32, &pairs),
                    done_at,
                );
            }
            t => panic!("worker node {node}: unexpected tag {t}"),
        }
    }

    if let Some(m) = obs {
        record_worker_batch(m, &served);
    }

    let stats = rank.stats();
    WorkerOut {
        node,
        busy_ns: pool.busy(),
        comm_cpu_ns: stats.send_cpu_ns + stats.recv_cpu_ns + stats.rma_cpu_ns,
        ndist: ndist_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::request::SearchRequest;
    use crate::routing::RoutingPolicy;
    use fastann_data::{ground_truth, synth, Distance};
    use fastann_hnsw::HnswConfig;
    use fastann_vptree::RouteConfig;

    /// Engine tests drive the builder path through one local helper.
    fn search_batch(index: &DistIndex, queries: &VectorSet, opts: &SearchOptions) -> QueryReport {
        SearchRequest::new(index, queries).opts(*opts).run()
    }

    fn build_small(
        n: usize,
        dim: usize,
        cores: usize,
        per_node: usize,
        seed: u64,
    ) -> (VectorSet, DistIndex) {
        let data = synth::sift_like(n, dim, seed);
        let cfg = EngineConfig::new(cores, per_node)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
            .with_seed(seed);
        let index = DistIndex::build(&data, cfg);
        (data, index)
    }

    #[test]
    fn results_have_k_sorted_unique_neighbors() {
        let (data, index) = build_small(3000, 16, 8, 2, 1);
        let queries = synth::queries_near(&data, 20, 0.02, 2);
        let report = search_batch(&index, &queries, &SearchOptions::new(10));
        assert_eq!(report.results.len(), 20);
        for r in &report.results {
            assert_eq!(r.len(), 10);
            for w in r.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
            let mut ids: Vec<u32> = r.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 10, "duplicate global ids in result");
            assert!(ids.iter().all(|&id| (id as usize) < data.len()));
        }
    }

    #[test]
    fn recall_is_high_with_generous_routing() {
        let (data, index) = build_small(4000, 16, 8, 2, 3);
        let queries = synth::queries_near(&data, 30, 0.02, 4);
        let mut opts = SearchOptions::new(10);
        opts.ef = 128;
        let report = search_batch(&index, &queries, &opts);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let rec = ground_truth::recall_at_k(&report.results, &gt, 10);
        assert!(rec.mean > 0.7, "recall too low: {}", rec.mean);
    }

    #[test]
    fn one_sided_matches_two_sided_results() {
        let (data, index) = build_small(2000, 16, 8, 2, 5);
        let queries = synth::queries_near(&data, 15, 0.02, 6);
        let one = search_batch(
            &index,
            &queries,
            &SearchOptions::new(10).with_one_sided(true),
        );
        let two = search_batch(
            &index,
            &queries,
            &SearchOptions::new(10).with_one_sided(false),
        );
        assert_eq!(
            one.results, two.results,
            "result content must not depend on transport"
        );
    }

    #[test]
    fn one_sided_reduces_master_comm_cpu() {
        let (data, index) = build_small(2000, 16, 16, 2, 7);
        let queries = synth::queries_near(&data, 200, 0.05, 8);
        let one = search_batch(
            &index,
            &queries,
            &SearchOptions::new(10).with_one_sided(true),
        );
        let two = search_batch(
            &index,
            &queries,
            &SearchOptions::new(10).with_one_sided(false),
        );
        assert!(
            one.master_comm_cpu_ns < two.master_comm_cpu_ns,
            "one-sided should cut master comm CPU: {} vs {}",
            one.master_comm_cpu_ns,
            two.master_comm_cpu_ns
        );
    }

    #[test]
    fn replication_spreads_queries() {
        let (data, mut index) = build_small(2000, 16, 8, 2, 9);
        // route every query to exactly its home partition so the workgroup
        // round-robin is the only load-spreading mechanism under test
        index.config.route = RouteConfig {
            margin_frac: 0.0,
            max_partitions: 1,
        };
        // skewed workload: all queries near one point -> same home partition
        let mut queries = VectorSet::new(16);
        let base = data.get(0).to_vec();
        for i in 0..60 {
            let mut q = base.clone();
            q[0] += (i % 5) as f32 * 0.01;
            queries.push(&q);
        }
        let r1 = search_batch(
            &index,
            &queries,
            &SearchOptions::new(10).with_routing(RoutingPolicy::Static(1)),
        );
        let r3 = search_batch(
            &index,
            &queries,
            &SearchOptions::new(10).with_routing(RoutingPolicy::Static(3)),
        );
        assert_eq!(r1.results.len(), r3.results.len());
        let d1 = r1.query_distribution();
        let d3 = r3.query_distribution();
        assert!(
            d3.max < d1.max,
            "replication must shrink the busiest core: {} vs {}",
            d1.max,
            d3.max
        );
    }

    #[test]
    fn per_core_counts_match_fanout() {
        let (data, index) = build_small(2000, 16, 8, 2, 11);
        let queries = synth::queries_near(&data, 25, 0.05, 12);
        let report = search_batch(&index, &queries, &SearchOptions::new(10));
        let dispatched: u64 = report.per_core_queries.iter().sum();
        assert_eq!(dispatched as f64, report.mean_fanout * 25.0);
    }

    #[test]
    fn accounting_is_populated() {
        let (data, index) = build_small(2000, 16, 8, 4, 13);
        let queries = synth::queries_near(&data, 20, 0.05, 14);
        let report = search_batch(&index, &queries, &SearchOptions::new(10));
        assert!(report.total_ns > 0.0);
        assert!(report.master_route_ns > 0.0);
        assert!(report.mean_fanout >= 1.0);
        assert_eq!(report.node_busy_ns.len(), 2);
        assert!(report.total_ndist > 0);
        assert!(report.throughput_qps() > 0.0);
        let (c, m, i) = report.breakdown();
        assert!((c + m + i - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_cores_cut_query_time() {
        // the strong-scaling effect of Fig. 3 at miniature scale
        let data = synth::sift_like(6000, 16, 15);
        let queries = synth::queries_near(&data, 60, 0.05, 16);
        let time_for = |cores: usize| {
            let cfg = EngineConfig::new(cores, 2)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(15))
                .with_seed(15);
            let index = DistIndex::build(&data, cfg);
            search_batch(&index, &queries, &SearchOptions::new(10)).total_ns
        };
        let slow = time_for(4);
        let fast = time_for(16);
        assert!(
            fast < slow,
            "16 cores ({fast:.0} ns) should beat 4 cores ({slow:.0} ns)"
        );
    }

    #[test]
    fn route_cap_bounds_fanout() {
        let (data, index) = build_small(2000, 16, 8, 2, 17);
        let queries = synth::queries_near(&data, 10, 0.05, 18);
        let report = search_batch(&index, &queries, &SearchOptions::new(5));
        assert!(report.mean_fanout <= index.config.route.max_partitions as f64);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let (_, index) = build_small(500, 8, 4, 2, 19);
        let queries = synth::sift_like(3, 16, 20);
        let _ = search_batch(&index, &queries, &SearchOptions::new(5));
    }

    #[test]
    fn perturbed_schedule_is_result_neutral() {
        // the race-detector contract: a correct protocol returns an
        // identical report under every schedule perturbation seed
        let (data, index) = build_small(2000, 16, 8, 2, 23);
        let queries = synth::queries_near(&data, 15, 0.02, 24);
        for one_sided in [true, false] {
            let base = search_batch(
                &index,
                &queries,
                &SearchOptions::new(10).with_one_sided(one_sided),
            );
            for seed in [1u64, 7, 0xDEAD_BEEF] {
                let opts = SearchOptions::new(10)
                    .with_one_sided(one_sided)
                    .with_sched_seed(seed);
                let perturbed = search_batch(&index, &queries, &opts);
                assert_eq!(
                    base, perturbed,
                    "seed {seed} diverged (one_sided={one_sided})"
                );
            }
        }
    }

    #[test]
    fn threaded_engine_report_is_bit_identical() {
        // the determinism contract of `EngineConfig::threads`: real
        // thread-parallelism may only change wall-clock speed, never any
        // reported number — graphs, results, virtual times, counters
        let data = synth::sift_like(2000, 16, 25);
        let queries = synth::queries_near(&data, 15, 0.02, 26);
        let build_with = |threads: usize| {
            let cfg = EngineConfig::new(8, 2)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(25))
                .with_seed(25)
                .with_threads(threads);
            DistIndex::build(&data, cfg)
        };
        let base_index = build_with(1);
        let par_index = build_with(4);
        assert_eq!(
            base_index.build_stats, par_index.build_stats,
            "threaded build must not change BuildStats"
        );
        for one_sided in [true, false] {
            let opts = SearchOptions::new(10).with_one_sided(one_sided);
            let base = search_batch(&base_index, &queries, &opts);
            let fast = search_batch(&par_index, &queries, &opts);
            assert_eq!(
                base, fast,
                "threads=4 report diverged (one_sided={one_sided})"
            );
        }
    }

    #[test]
    fn wider_margin_improves_recall() {
        let data = synth::sift_like(3000, 16, 21);
        let queries = synth::queries_near(&data, 30, 0.02, 22);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let recall_for = |margin: f32, cap: usize| {
            let cfg = EngineConfig::new(8, 2)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(21))
                .with_route(RouteConfig {
                    margin_frac: margin,
                    max_partitions: cap,
                })
                .with_seed(21);
            let index = DistIndex::build(&data, cfg);
            let mut o = SearchOptions::new(10);
            o.ef = 128;
            let r = search_batch(&index, &queries, &o);
            ground_truth::recall_at_k(&r.results, &gt, 10).mean
        };
        let narrow = recall_for(0.0, 1);
        let wide = recall_for(0.3, 8);
        assert!(
            wide >= narrow,
            "wider routing must not hurt recall: narrow {narrow} wide {wide}"
        );
    }
}
