//! # fastann-mpisim
//!
//! A **virtual-time message-passing cluster simulator**: the substrate that
//! stands in for the paper's Cray XC40 + Cray MPICH (substitution rationale
//! in the repository's DESIGN.md — this repo reproduces cluster-scale
//! behaviour on a single-core host).
//!
//! Each simulated MPI rank runs as an OS thread with its own **virtual
//! clock** (nanoseconds, `f64`). Clocks advance two ways:
//!
//! * **compute** — code charges modelled work explicitly, e.g.
//!   [`Rank::charge_dists`] charges `n` distance evaluations priced by the
//!   [`CostModel`]; this makes strong-scaling curves deterministic and
//!   independent of host load (essential on a 1-core machine);
//! * **communication** — messages carry timestamps through an α–β network
//!   model ([`NetModel`]): a message sent at sender-time `t` with `b` bytes
//!   arrives at `t + α(src,dst) + b·β`; a receive completes at
//!   `max(receiver clock, arrival)`, and the gap is recorded as
//!   communication wait time.
//!
//! On top of the point-to-point layer sit MPI-style **collectives**
//! (barrier, broadcast, gather, all-gather, reductions, `Alltoallv`) over
//! sub-communicators ([`Comm`]), and **one-sided RMA windows**
//! ([`Window`]) with `MPI_Get_accumulate`-style atomic read-modify-write
//! at the origin's cost only — the primitive behind the paper's
//! "MPI one-sided communication" optimisation (Section IV-C1).
//!
//! ```
//! use fastann_mpisim::{Cluster, ReduceOp, SimConfig};
//!
//! let results = Cluster::new(SimConfig::new(4)).run(|rank| {
//!     let comm = rank.world();
//!     comm.allreduce_f64(rank, rank.rank() as f64, ReduceOp::Sum)
//! });
//! assert!(results.iter().all(|&s| s == 6.0));
//! ```

#![forbid(unsafe_code)]

mod cluster;
mod comm;
mod cost;
mod fault;
mod net;
mod rank;
mod rma;
mod trace;
mod vclock;
mod vthreads;
/// Little-endian wire encoding helpers shared by every protocol.
pub mod wire;

pub use cluster::{Cluster, Conservation, LeakedMsg, SimConfig};
pub use comm::{Comm, ReduceOp};
pub use cost::CostModel;
pub use fault::{Fate, FaultAction, FaultPlan};
pub use net::{NetModel, Topology};
pub use rank::{Msg, Rank, RankStats};
pub use rma::Window;
pub use trace::{Span, SpanKind, Trace};
pub use vclock::{EventQueue, VClock};
pub use vthreads::{SchedPerturb, VThreadPool};
