//! Scalar quantization (SQ8): the simplest member of the compressed-index
//! family the paper contrasts itself against.
//!
//! Section V-F argues that compression-based billion-scale indexes
//! "cannot achieve near perfect recalls" — quantization error puts a
//! ceiling on recall that no amount of extra search effort removes, while
//! the paper's uncompressed distributed index reaches recall ≈ 1 by raising
//! M. [`Sq8`] lets the benchmark suite demonstrate that plateau: vectors
//! are compressed 4× (f32 → u8 per dimension, per-dimension affine grid)
//! and searched exhaustively in the quantized domain.
//!
//! Beyond the plateau demo, [`Sq8`] is the engine's traversal codec: the
//! *asymmetric* distance ([`Sq8::prepare_query`] + [`Sq8::asym_l2`]) keeps
//! the query at full f32 precision and compares it against the quantized
//! grid points, which halves the quantization error of the
//! symmetric-quantized [`Sq8::knn`] scan and — via the dot-expansion in
//! [`crate::kernels::sq8_dot`] — costs one fused multiply-add per
//! dimension over a quarter of the memory traffic of exact `squared_l2`.
//! The HNSW index traverses with it and re-ranks a small survivor pool at
//! full precision (the AQR-HNSW recipe).

use crate::kernels;
use crate::metric::Distance;
use crate::topk::{Neighbor, TopK};
use crate::vector::VectorSet;

/// An SQ8-compressed vector set: one byte per dimension, per-dimension
/// affine dequantization `x ≈ lo + code * (hi - lo) / 255`.
#[derive(Clone, Debug)]
pub struct Sq8 {
    dim: usize,
    lo: Vec<f32>,
    step: Vec<f32>,
    codes: Vec<u8>,
    /// Per-row squared grid norm `Σ_d (step[d]·code[d])²`, cached at encode
    /// time so the asymmetric distance is a single dot pass per candidate.
    norms: Vec<f32>,
    n: usize,
}

/// A query prepared for repeated [`Sq8::asym_l2`] evaluations against one
/// trained grid.
///
/// Holds the grid-relative weight vector `w[d] = (q[d] − lo[d]) · step[d]`
/// and the query's squared offset from the grid origin
/// `qnorm = Σ_d (q[d] − lo[d])²`. The query itself is **never quantized**
/// — out-of-training-range components stay at full precision instead of
/// clamping to the grid edge, so asymmetric distances remain faithful at
/// the extremes.
#[derive(Clone, Debug)]
pub struct Sq8Query {
    w: Vec<f32>,
    qnorm: f32,
}

impl Sq8Query {
    /// The prepared query's dimensionality.
    pub fn dim(&self) -> usize {
        self.w.len()
    }
}

impl Sq8 {
    /// Quantizes `data` (trains the per-dimension grid on the data itself).
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn encode(data: &VectorSet) -> Sq8 {
        assert!(!data.is_empty(), "cannot quantize an empty set");
        let dim = data.dim();
        let (lo, hi) = data.bounds().expect("non-empty");
        let step: Vec<f32> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| ((h - l) / 255.0).max(f32::MIN_POSITIVE))
            .collect();
        let mut codes = Vec::with_capacity(data.len() * dim);
        for row in data.iter() {
            for d in 0..dim {
                let c = ((row[d] - lo[d]) / step[d]).round().clamp(0.0, 255.0);
                codes.push(c as u8);
            }
        }
        let norms = row_norms(dim, &step, &codes);
        Sq8 {
            dim,
            lo,
            step,
            codes,
            norms,
            n: data.len(),
        }
    }

    /// Rebuilds a quantizer from its serialized parts (grid plus codes).
    /// The per-row norm cache is recomputed — it is derived data, so
    /// persisting it would only add a corruption surface.
    ///
    /// # Panics
    /// Panics if `lo`/`step` are not `dim`-long, if `codes` is not a whole
    /// number of `dim`-long rows, or if any step is non-positive.
    pub fn from_parts(dim: usize, lo: Vec<f32>, step: Vec<f32>, codes: Vec<u8>) -> Sq8 {
        assert!(dim > 0, "quantizer dimension must be positive");
        assert_eq!(lo.len(), dim, "lo length must equal dim");
        assert_eq!(step.len(), dim, "step length must equal dim");
        assert_eq!(codes.len() % dim, 0, "codes must be whole rows");
        assert!(
            step.iter().all(|&s| s > 0.0),
            "quantizer steps must be positive"
        );
        let n = codes.len() / dim;
        let norms = row_norms(dim, &step, &codes);
        Sq8 {
            dim,
            lo,
            step,
            codes,
            norms,
            n,
        }
    }

    /// Per-dimension grid origin (serialization accessor).
    pub fn lo(&self) -> &[f32] {
        &self.lo
    }

    /// Per-dimension grid step (serialization accessor).
    pub fn step(&self) -> &[f32] {
        &self.step
    }

    /// All code bytes, row-major (serialization accessor).
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of compressed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when empty (never after `encode`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Compressed bytes (codes only; the grid adds `2 × dim × 4`).
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Dequantizes row `i` (for inspection/testing).
    pub fn decode(&self, i: usize) -> Vec<f32> {
        let s = i * self.dim;
        self.codes[s..s + self.dim]
            .iter()
            .enumerate()
            .map(|(d, &c)| self.lo[d] + c as f32 * self.step[d])
            .collect()
    }

    /// Quantizes a query onto the trained grid without storing it,
    /// returning one code byte per dimension. Two queries produce the same
    /// byte string iff they round to the same grid cell in every
    /// dimension, so the codes double as a compact (deliberately lossy)
    /// cache key for online serving: an exact re-submission always maps to
    /// the same key, while near-duplicate queries coalesce onto one entry.
    /// Callers that need exactness on top (the serving result cache does)
    /// must verify the stored query against the incoming one on a hit.
    ///
    /// # Panics
    /// Panics if `q.len() != self.dim()`.
    pub fn encode_query(&self, q: &[f32]) -> Vec<u8> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        q.iter()
            .enumerate()
            .map(|(d, &x)| ((x - self.lo[d]) / self.step[d]).round().clamp(0.0, 255.0) as u8)
            .collect()
    }

    /// Prepares `q` for repeated [`Sq8::asym_l2`] evaluations: one pass
    /// over the query amortized across every candidate it will be compared
    /// to. No clamping and no division happens here — the query stays at
    /// full precision even outside the trained range.
    ///
    /// # Panics
    /// Panics if `q.len() != self.dim()`.
    pub fn prepare_query(&self, q: &[f32]) -> Sq8Query {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let w = q
            .iter()
            .zip(&self.lo)
            .zip(&self.step)
            .map(|((&x, &lo), &s)| (x - lo) * s)
            .collect();
        let qnorm = kernels::squared_l2(q, &self.lo);
        Sq8Query { w, qnorm }
    }

    /// Asymmetric squared-L2 distance between a prepared full-precision
    /// query and quantized row `i`: exactly `squared_l2(q, decode(i))` up
    /// to floating-point rearrangement, computed via the dot expansion
    /// `‖q−lo‖² + norm_i − 2·Σ_d w[d]·code[d]` so the inner loop touches
    /// one byte per dimension. Clamped at zero (the expansion can go
    /// slightly negative through rounding when the query sits on a grid
    /// point).
    ///
    /// # Panics
    /// Panics if the prepared query's dimension differs from the grid's or
    /// `i` is out of range.
    #[inline]
    pub fn asym_l2(&self, prep: &Sq8Query, i: usize) -> f32 {
        let s = i * self.dim;
        let row = &self.codes[s..s + self.dim];
        (prep.qnorm + self.norms[i] - 2.0 * kernels::sq8_dot(&prep.w, row)).max(0.0)
    }

    /// Exhaustive k-NN in the quantized domain: the query is quantized to
    /// the same grid and distances computed between dequantized values.
    /// This is where the recall ceiling comes from — true neighbours whose
    /// distance gap is below the quantization error get misranked, no
    /// matter how hard you search.
    pub fn knn(&self, q: &[f32], k: usize, dist: Distance) -> Vec<Neighbor> {
        // dequantized query (same information loss the stored vectors had)
        let qq: Vec<f32> = self
            .encode_query(q)
            .iter()
            .enumerate()
            .map(|(d, &c)| self.lo[d] + c as f32 * self.step[d])
            .collect();
        let mut top = TopK::new(k);
        let mut row = vec![0f32; self.dim];
        for i in 0..self.n {
            let s = i * self.dim;
            for (d, r) in row.iter_mut().enumerate() {
                *r = self.lo[d] + self.codes[s + d] as f32 * self.step[d];
            }
            top.push(Neighbor::new(i as u32, dist.eval(&qq, &row)));
        }
        top.into_sorted()
    }
}

/// Caches `Σ_d (step[d]·code[d])²` for every row.
fn row_norms(dim: usize, step: &[f32], codes: &[u8]) -> Vec<f32> {
    codes
        .chunks_exact(dim)
        .map(|row| kernels::sq8_norm(step, row))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth;
    use crate::synth;

    #[test]
    fn decode_error_bounded_by_step() {
        let data = synth::sift_like(200, 8, 1);
        let sq = Sq8::encode(&data);
        for i in (0..200).step_by(37) {
            let orig = data.get(i);
            let dec = sq.decode(i);
            for d in 0..8 {
                assert!(
                    (orig[d] - dec[d]).abs() <= sq.step[d] * 0.51,
                    "dim {d}: {} vs {}",
                    orig[d],
                    dec[d]
                );
            }
        }
    }

    #[test]
    fn compression_is_4x() {
        let data = synth::sift_like(100, 32, 2);
        let sq = Sq8::encode(&data);
        assert_eq!(sq.code_bytes(), 100 * 32);
        assert_eq!(sq.code_bytes() * 4, data.as_flat().len() * 4);
    }

    #[test]
    fn quantized_search_is_good_but_not_perfect() {
        // SIFT-like data has byte-range values, so SQ8 is nearly lossless
        // there; use fine-grained unit-norm data where quantization bites.
        let data = synth::deep_like(3000, 24, 3);
        let queries = synth::queries_near(&data, 40, 0.01, 4);
        let sq = Sq8::encode(&data);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let approx: Vec<_> = (0..queries.len())
            .map(|i| sq.knn(queries.get(i), 10, Distance::L2))
            .collect();
        let recall = ground_truth::recall_at_k(&approx, &gt, 10);
        assert!(recall.mean > 0.6, "SQ8 recall collapsed: {}", recall.mean);
        assert!(
            recall.mean < 1.0,
            "quantization should cost at least a little recall on dense data"
        );
    }

    #[test]
    fn exact_grid_points_round_trip() {
        // data already on the grid -> lossless
        let mut data = VectorSet::new(2);
        data.push(&[0.0, 0.0]);
        data.push(&[255.0, 255.0]);
        data.push(&[128.0, 64.0]);
        let sq = Sq8::encode(&data);
        for i in 0..3 {
            let dec = sq.decode(i);
            for (got, want) in dec.iter().zip(data.get(i)) {
                assert!((got - want).abs() < 0.51);
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_encode_panics() {
        let _ = Sq8::encode(&VectorSet::new(4));
    }

    #[test]
    fn encode_query_is_a_stable_lossy_key() {
        let data = synth::sift_like(300, 16, 9);
        let sq = Sq8::encode(&data);
        let q: Vec<f32> = data.get(7).to_vec();

        // exact resubmission -> identical key
        assert_eq!(sq.encode_query(&q), sq.encode_query(&q));

        // sub-step perturbation -> same grid cell, same key
        let mut near = q.clone();
        near[0] += sq.step[0] * 0.2;
        assert_eq!(sq.encode_query(&q), sq.encode_query(&near));

        // a far query -> different key
        let far: Vec<f32> = data.get(100).to_vec();
        assert_ne!(sq.encode_query(&q), sq.encode_query(&far));

        // the key is exactly the stored code path: encoding row i's vector
        // reproduces row i's stored codes
        let key = sq.encode_query(data.get(7));
        assert_eq!(&key[..], &sq.codes[7 * sq.dim..8 * sq.dim]);
    }

    #[test]
    #[should_panic]
    fn encode_query_rejects_dim_mismatch() {
        let data = synth::sift_like(10, 8, 11);
        let _ = Sq8::encode(&data).encode_query(&[0.0; 4]);
    }

    #[test]
    fn encode_query_clamps_out_of_range_components() {
        // regression: components far outside the trained range must
        // saturate at the grid edges (0 / 255), not wrap around through
        // an unchecked float->u8 cast (which is UB-adjacent saturation in
        // release and would skew every asymmetric comparison)
        let mut data = VectorSet::new(2);
        data.push(&[0.0, 0.0]);
        data.push(&[10.0, 10.0]);
        let sq = Sq8::encode(&data);
        assert_eq!(sq.encode_query(&[-1e6, -1e6]), vec![0, 0]);
        assert_eq!(sq.encode_query(&[1e6, 1e6]), vec![255, 255]);
        // NaN propagates through the clamp and the saturating cast maps
        // it to 0 -- defined behaviour, pinned here so it stays that way
        assert_eq!(sq.encode_query(&[f32::NAN, 5.0]), vec![0, 127]);
    }

    #[test]
    fn asym_l2_matches_exact_distance_to_decoded_row() {
        let data = synth::deep_like(400, 24, 5);
        let queries = synth::queries_near(&data, 10, 0.05, 6);
        let sq = Sq8::encode(&data);
        for qi in 0..queries.len() {
            let q = queries.get(qi);
            let prep = sq.prepare_query(q);
            for i in (0..400).step_by(53) {
                let want = crate::kernels::squared_l2(q, &sq.decode(i));
                let got = sq.asym_l2(&prep, i);
                let tol = 1e-4 * (1.0 + want);
                assert!(
                    (got - want).abs() <= tol,
                    "row {i}: asym {got} vs exact-to-decoded {want}"
                );
            }
        }
    }

    #[test]
    fn asym_l2_handles_out_of_range_queries_without_distortion() {
        // a query far outside the trained box: the asymmetric form must
        // track the true distance to the decoded points (no clamping), so
        // the *nearest* decoded point under asym_l2 is the true nearest
        let mut data = VectorSet::new(2);
        data.push(&[0.0, 0.0]);
        data.push(&[10.0, 0.0]);
        data.push(&[0.0, 10.0]);
        let sq = Sq8::encode(&data);
        let q = [1000.0f32, 0.0];
        let prep = sq.prepare_query(&q);
        let d: Vec<f32> = (0..3).map(|i| sq.asym_l2(&prep, i)).collect();
        assert!(d[1] < d[0] && d[1] < d[2], "{d:?}");
        let want = crate::kernels::squared_l2(&q, &sq.decode(1));
        assert!((d[1] - want).abs() <= 1e-2 * want.max(1.0));
    }

    #[test]
    fn from_parts_round_trips_and_recomputes_norms() {
        let data = synth::sift_like(50, 16, 21);
        let sq = Sq8::encode(&data);
        let rebuilt = Sq8::from_parts(
            sq.dim(),
            sq.lo().to_vec(),
            sq.step().to_vec(),
            sq.codes().to_vec(),
        );
        assert_eq!(rebuilt.len(), sq.len());
        let q = data.get(3);
        let (p1, p2) = (sq.prepare_query(q), rebuilt.prepare_query(q));
        for i in 0..50 {
            assert_eq!(
                sq.asym_l2(&p1, i).to_bits(),
                rebuilt.asym_l2(&p2, i).to_bits(),
                "row {i} not bit-identical after round trip"
            );
        }
    }

    #[test]
    #[should_panic(expected = "steps must be positive")]
    fn from_parts_rejects_bad_steps() {
        let _ = Sq8::from_parts(2, vec![0.0, 0.0], vec![1.0, 0.0], vec![0, 0]);
    }

    #[test]
    fn degenerate_constant_data_does_not_divide_by_zero() {
        // zero range per dimension -> step pinned at f32::MIN_POSITIVE;
        // encode, decode, prepare, and asym all stay finite
        let mut data = VectorSet::new(3);
        for _ in 0..4 {
            data.push(&[7.0, 7.0, 7.0]);
        }
        let sq = Sq8::encode(&data);
        let dec = sq.decode(2);
        assert!(dec.iter().all(|v| v.is_finite()));
        let prep = sq.prepare_query(&[7.0, 7.0, 7.0]);
        let d = sq.asym_l2(&prep, 0);
        assert!(d.is_finite() && d >= 0.0);
        let far = sq.prepare_query(&[8.0, 6.0, 7.0]);
        assert!(sq.asym_l2(&far, 0).is_finite());
    }
}
