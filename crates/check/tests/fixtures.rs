//! Fixture corpus: one positive (must fire) and one negative (must stay
//! silent) source file per rule, driven through [`lint::lint_source`].
//!
//! The negatives double as blind-spot regressions for the token engine:
//! needles inside string literals and comments, `#[cfg(test)]` modules,
//! annotated hash traversals, block docs behind multi-line attributes.
//! A fixture is linted *as if* it lived at the rel path in [`CASES`], so
//! crate-scoped rules (doc crates, contract crates, hnsw) see the right
//! scope without the fixture living there.

use std::fs;
use std::path::Path;

use fastann_check::lint;
use fastann_check::rules::ALL_RULES;

/// (rule, fixture dir under `tests/fixtures/`, rel path linted as).
const CASES: [(&str, &str, &str); 12] = [
    ("no-unwrap", "no-unwrap", "crates/core/src/fixture.rs"),
    ("no-panic", "no-panic", "crates/core/src/fixture.rs"),
    (
        "no-thread-spawn",
        "no-thread-spawn",
        "crates/core/src/fixture.rs",
    ),
    (
        "wildcard-recv",
        "wildcard-recv",
        "crates/kdtree/src/fixture.rs",
    ),
    (
        "tag-registry",
        "tag-registry",
        "crates/kdtree/src/fixture.rs",
    ),
    ("missing-doc", "missing-doc", "crates/core/src/fixture.rs"),
    (
        "search-batch-variant",
        "search-batch-variant",
        "crates/core/src/fixture.rs",
    ),
    (
        "quantized-traversal",
        "quantized-traversal",
        "crates/hnsw/src/fixture.rs",
    ),
    ("det-map-iter", "det-map-iter", "crates/core/src/fixture.rs"),
    (
        "det-wall-clock",
        "det-wall-clock",
        "crates/obs/src/fixture.rs",
    ),
    (
        "det-thread-id",
        "det-thread-id",
        "crates/serve/src/fixture.rs",
    ),
    (
        "det-float-accum",
        "det-float-accum",
        "crates/core/src/fixture.rs",
    ),
];

fn lint_fixture(dir: &str, which: &str, rel: &str) -> Vec<lint::Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(format!("{which}.rs"));
    let content = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let tags = vec![("TAG_GOOD".to_string(), 7u64)];
    lint::lint_source(rel, &content, &tags)
}

#[test]
fn every_rule_fires_on_its_positive_fixture() {
    for (rule, dir, rel) in CASES {
        let found = lint_fixture(dir, "positive", rel);
        assert!(
            found.iter().any(|v| v.rule == rule),
            "{dir}/positive.rs: expected at least one [{rule}] finding, got: {found:?}"
        );
    }
}

#[test]
fn every_rule_stays_silent_on_its_negative_fixture() {
    for (rule, dir, rel) in CASES {
        let found = lint_fixture(dir, "negative", rel);
        let hits: Vec<_> = found.iter().filter(|v| v.rule == rule).collect();
        assert!(
            hits.is_empty(),
            "{dir}/negative.rs: expected no [{rule}] findings, got: {hits:?}"
        );
    }
}

#[test]
fn corpus_covers_every_rule() {
    for rule in ALL_RULES {
        assert!(
            CASES.iter().any(|(r, _, _)| *r == rule),
            "no fixture case for rule [{rule}]"
        );
    }
}
