//! Network model (α–β) and node topology.

/// Maps ranks to compute nodes. Ranks `[0, ranks_per_node)` share node 0,
/// the next group node 1, and so on — the layout MPI launchers use by
/// default. Intra-node messages ride shared memory (cheaper α and β).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Ranks co-located per compute node.
    pub ranks_per_node: usize,
}

impl Topology {
    /// One rank per node (every message crosses the interconnect).
    pub fn one_rank_per_node() -> Self {
        Self { ranks_per_node: 1 }
    }

    /// Compute node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1)
    }

    /// `true` when both ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::one_rank_per_node()
    }
}

/// α–β communication model with distinct intra-node and inter-node
/// parameters, plus fixed per-message CPU overheads.
///
/// Defaults approximate the paper's Cray Aries interconnect: ~1.3 µs
/// inter-node latency, ~10 GB/s per-rank bandwidth; intra-node messages go
/// through shared memory (~0.4 µs, ~25 GB/s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetModel {
    /// One-way latency within a node (ns).
    pub alpha_intra_ns: f64,
    /// One-way latency across nodes (ns).
    pub alpha_inter_ns: f64,
    /// Seconds-per-byte within a node, expressed as ns/byte.
    pub beta_intra_ns_per_byte: f64,
    /// ns/byte across nodes.
    pub beta_inter_ns_per_byte: f64,
    /// CPU time a sender spends posting a non-blocking send (ns).
    pub send_overhead_ns: f64,
    /// CPU time a receiver spends completing a matched receive (ns).
    pub recv_overhead_ns: f64,
    /// Extra origin-side cost of a one-sided RMA operation (ns); the target
    /// CPU is *not* charged — that asymmetry is the whole point of the
    /// paper's one-sided optimisation.
    pub rma_overhead_ns: f64,
    /// Per-message latency jitter as a fraction of the wire time
    /// (0 = perfectly regular network). Jitter is *deterministic*: derived
    /// from a hash of `(src, dst, bytes, sequence)`, so runs stay
    /// reproducible while message times vary realistically. Congested
    /// fabrics run around 0.1–0.5.
    pub jitter_frac: f64,
}

impl Default for NetModel {
    fn default() -> Self {
        Self {
            alpha_intra_ns: 400.0,
            alpha_inter_ns: 1300.0,
            beta_intra_ns_per_byte: 0.04, // 25 GB/s
            beta_inter_ns_per_byte: 0.10, // 10 GB/s
            send_overhead_ns: 150.0,
            recv_overhead_ns: 250.0,
            rma_overhead_ns: 300.0,
            jitter_frac: 0.0,
        }
    }
}

impl NetModel {
    /// Wire time for `bytes` between two ranks (α + bytes·β), without
    /// jitter.
    #[inline]
    pub fn xfer_ns(&self, topo: &Topology, src: usize, dst: usize, bytes: usize) -> f64 {
        if topo.same_node(src, dst) {
            self.alpha_intra_ns + bytes as f64 * self.beta_intra_ns_per_byte
        } else {
            self.alpha_inter_ns + bytes as f64 * self.beta_inter_ns_per_byte
        }
    }

    /// Wire time including deterministic jitter: the base α–β time scaled
    /// by `1 + jitter_frac * u` with `u ∈ [0, 1)` hashed from the message
    /// identity (`src`, `dst`, `bytes`, `seq`).
    #[inline]
    pub fn xfer_jittered_ns(
        &self,
        topo: &Topology,
        src: usize,
        dst: usize,
        bytes: usize,
        seq: u64,
    ) -> f64 {
        let base = self.xfer_ns(topo, src, dst, bytes);
        if self.jitter_frac <= 0.0 {
            return base;
        }
        let mut x = (src as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((dst as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((bytes as u64) << 17)
            .wrapping_add(seq);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        base * (1.0 + self.jitter_frac * u)
    }

    /// Cray Aries-class interconnect (the paper's testbed): ~1.3 µs
    /// inter-node latency, ~10 GB/s per rank. Same as [`NetModel::default`].
    pub fn aries() -> Self {
        Self::default()
    }

    /// InfiniBand EDR-class fabric: lower latency, similar bandwidth.
    pub fn infiniband() -> Self {
        Self {
            alpha_inter_ns: 900.0,
            beta_inter_ns_per_byte: 0.08, // ~12.5 GB/s
            ..Self::default()
        }
    }

    /// Commodity 10 GbE with a kernel network stack: order-of-magnitude
    /// higher latency, ~1.2 GB/s effective. Useful for studying how the
    /// paper's design degrades off HPC fabrics.
    pub fn ethernet_10g() -> Self {
        Self {
            alpha_inter_ns: 25_000.0,
            beta_inter_ns_per_byte: 0.8,
            send_overhead_ns: 2_000.0,
            recv_overhead_ns: 3_000.0,
            rma_overhead_ns: 5_000.0,
            ..Self::default()
        }
    }

    /// A zero-cost network for algorithm-only unit tests.
    pub fn ideal() -> Self {
        Self {
            alpha_intra_ns: 0.0,
            alpha_inter_ns: 0.0,
            beta_intra_ns_per_byte: 0.0,
            beta_inter_ns_per_byte: 0.0,
            send_overhead_ns: 0.0,
            recv_overhead_ns: 0.0,
            rma_overhead_ns: 0.0,
            jitter_frac: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_maps_ranks_to_nodes() {
        let t = Topology { ranks_per_node: 4 };
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert!(t.same_node(1, 2));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn one_rank_per_node_never_shares() {
        let t = Topology::one_rank_per_node();
        assert!(!t.same_node(0, 1));
        assert!(t.same_node(2, 2));
    }

    #[test]
    fn inter_node_costs_more() {
        let t = Topology { ranks_per_node: 2 };
        let net = NetModel::default();
        let intra = net.xfer_ns(&t, 0, 1, 1024);
        let inter = net.xfer_ns(&t, 0, 2, 1024);
        assert!(inter > intra);
    }

    #[test]
    fn xfer_linear_in_bytes() {
        let t = Topology::one_rank_per_node();
        let net = NetModel::default();
        let a = net.xfer_ns(&t, 0, 1, 0);
        let b = net.xfer_ns(&t, 0, 1, 1000);
        assert!((b - a - 1000.0 * net.beta_inter_ns_per_byte).abs() < 1e-9);
    }

    #[test]
    fn ideal_is_free() {
        let t = Topology::default();
        let net = NetModel::ideal();
        assert_eq!(net.xfer_ns(&t, 0, 5, 1 << 20), 0.0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let t = Topology::one_rank_per_node();
        let net = NetModel {
            jitter_frac: 0.3,
            ..NetModel::default()
        };
        let base = net.xfer_ns(&t, 0, 1, 512);
        let a = net.xfer_jittered_ns(&t, 0, 1, 512, 7);
        let b = net.xfer_jittered_ns(&t, 0, 1, 512, 7);
        assert_eq!(a, b, "same message identity -> same jitter");
        assert!(
            a >= base && a <= base * 1.3 + 1e-9,
            "jitter out of bounds: {a} vs {base}"
        );
        let c = net.xfer_jittered_ns(&t, 0, 1, 512, 8);
        assert_ne!(a, c, "different sequence numbers should jitter differently");
        // zero jitter passes through exactly
        let plain = NetModel::default();
        assert_eq!(plain.xfer_jittered_ns(&t, 0, 1, 512, 7), base);
    }

    #[test]
    fn presets_order_by_quality() {
        let t = Topology::one_rank_per_node();
        let msg = |n: &NetModel| n.xfer_ns(&t, 0, 1, 4096);
        assert!(msg(&NetModel::infiniband()) < msg(&NetModel::aries()));
        assert!(msg(&NetModel::aries()) < msg(&NetModel::ethernet_10g()));
        assert!(NetModel::ethernet_10g().recv_overhead_ns > NetModel::aries().recv_overhead_ns);
    }
}
