//! Token-bucket rate limiting, in virtual time.

/// A classic token bucket refilled continuously by the virtual clock:
/// capacity `burst`, refill `rate` tokens per virtual second, one token
/// per admitted request. All arithmetic is plain `f64` on virtual
/// timestamps, so identical request streams produce identical admission
/// decisions on every host and at every thread count.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    rate_per_ns: f64,
    burst: f64,
    tokens: f64,
    last_ns: f64,
}

impl TokenBucket {
    /// A bucket that starts full. `rate_qps` of `f64::INFINITY` disables
    /// limiting (every `try_take` succeeds).
    pub fn new(rate_qps: f64, burst: f64) -> Self {
        assert!(rate_qps > 0.0, "rate must be positive");
        assert!(burst >= 1.0, "burst must allow at least one request");
        Self {
            rate_per_ns: rate_qps / 1e9,
            burst,
            tokens: burst,
            last_ns: 0.0,
        }
    }

    /// Refills for the elapsed virtual time, then tries to take one token.
    /// `now_ns` must not run backwards between calls (callers pass a
    /// monotonic [`fastann_mpisim::VClock`] reading).
    pub fn try_take(&mut self, now_ns: f64) -> bool {
        if self.rate_per_ns.is_infinite() {
            return true;
        }
        let dt = (now_ns - self.last_ns).max(0.0);
        self.last_ns = now_ns;
        self.tokens = (self.tokens + dt * self.rate_per_ns).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starve_then_refill() {
        // 1000 qps = 1 token per virtual millisecond, burst of 2
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0), "burst admits a second instant request");
        assert!(!b.try_take(0.0), "burst exhausted");
        assert!(
            !b.try_take(0.5e6),
            "half a millisecond refills half a token"
        );
        // the failed probe at 0.5 ms left 0.5 tokens; 0.6 ms later the
        // bucket crosses 1.0 again
        assert!(b.try_take(1.1e6));
        assert!(!b.try_take(1.1e6));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 3.0);
        for _ in 0..3 {
            assert!(b.try_take(0.0));
        }
        // a year of idle virtual time still refills to exactly `burst`
        for _ in 0..3 {
            assert!(b.try_take(1e15));
        }
        assert!(!b.try_take(1e15));
    }

    #[test]
    fn infinite_rate_never_rejects() {
        let mut b = TokenBucket::new(f64::INFINITY, 1.0);
        for i in 0..10_000 {
            assert!(b.try_take(i as f64));
        }
    }

    #[test]
    fn decisions_are_replayable() {
        let times = [0.0, 0.1e6, 0.9e6, 1.0e6, 5.0e6, 5.0e6, 5.1e6];
        let run =
            |mut b: TokenBucket| -> Vec<bool> { times.iter().map(|&t| b.try_take(t)).collect() };
        let a = run(TokenBucket::new(500.0, 2.0));
        let b = run(TokenBucket::new(500.0, 2.0));
        assert_eq!(a, b);
    }
}
