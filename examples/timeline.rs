//! Visualise a query batch as a virtual-time Gantt chart — where does the
//! time actually go? Compares a balanced batch against a skewed one (the
//! situation the paper's replication optimisation targets) so the hot-node
//! serialisation is visible at a glance.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use fastann::core::{DistIndex, EngineConfig, RoutingPolicy, SearchOptions, SearchRequest};
use fastann::data::{synth, VectorSet};
use fastann::hnsw::HnswConfig;
use fastann::mpisim::Trace;

fn main() {
    let data = synth::sift_like(20_000, 64, 5);
    let config = EngineConfig::new(16, 4).with_hnsw(HnswConfig::with_m(12).ef_construction(50));
    let index = DistIndex::build(&data, config);
    let n_rows = index.config.n_nodes() + 1; // master + worker nodes

    // Balanced batch: queries spread across the whole dataset.
    let balanced = synth::queries_near(&data, 150, 0.05, 6);
    let trace = Trace::new();
    let report = SearchRequest::new(&index, &balanced)
        .opts(SearchOptions::new(10))
        .trace(&trace)
        .run();
    println!(
        "=== balanced batch ({:.2} virtual ms) ===",
        report.total_ns / 1e6
    );
    print!("{}", trace.render(n_rows, 90));

    // Skewed batch: everything near one point -> one hot partition.
    let mut skewed = VectorSet::new(64);
    for i in 0..150 {
        let mut q = data.get(17).to_vec();
        q[0] += (i % 7) as f32;
        skewed.push(&q);
    }
    let trace = Trace::new();
    let report = SearchRequest::new(&index, &skewed)
        .opts(SearchOptions::new(10))
        .trace(&trace)
        .run();
    println!(
        "\n=== skewed batch, no replication ({:.2} virtual ms) ===",
        report.total_ns / 1e6
    );
    print!("{}", trace.render(n_rows, 90));

    let trace = Trace::new();
    let report = SearchRequest::new(&index, &skewed)
        .opts(SearchOptions::new(10).with_routing(RoutingPolicy::Static(4)))
        .trace(&trace)
        .run();
    println!(
        "\n=== skewed batch, replication r=4 ({:.2} virtual ms) ===",
        report.total_ns / 1e6
    );
    print!("{}", trace.render(n_rows, 90));
}
