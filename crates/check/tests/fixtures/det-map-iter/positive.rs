use std::collections::{HashMap, HashSet};

fn order_leak(counts: &HashMap<u64, usize>) -> Vec<u64> {
    let mut out = Vec::new();
    for k in counts.keys() {
        out.push(*k);
    }
    out
}

fn drain_all(mut pending: HashMap<u64, usize>) -> usize {
    pending.drain().count()
}

fn traverse(seen: HashSet<u64>) -> u64 {
    let mut acc = 0;
    for v in seen {
        acc ^= v;
    }
    acc
}
