//! Image-descriptor-shaped synthetic generators.
//!
//! Stand-ins for the real corpora in the paper's Table I (substitution
//! documented in DESIGN.md): each preserves the dimensionality, value range
//! and coarse cluster structure of the original descriptors, which is what
//! the VP-tree partitioning quality, HNSW search cost and routing fan-out
//! depend on. All are deterministic given the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{fill_normal, normal};
use crate::vector::VectorSet;

/// SIFT-descriptor-like vectors (stands in for ANN_SIFT1B): non-negative,
/// byte-range values with heavy cluster structure. Real SIFT descriptors are
/// 128-dimensional gradient histograms stored as `u8`; we model them as a
/// mixture of Gaussians clipped to `[0, 255]` and rounded to integers, which
/// reproduces their discrete byte grid.
pub fn sift_like(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_clusters = 64.min(n.max(1));
    // Cluster centres: exponential-ish histogram profile typical of SIFT.
    let mut centers = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        let mut c = vec![0f32; dim];
        for x in c.iter_mut() {
            let mag: f32 = rng.gen::<f32>();
            *x = 255.0 * mag * mag; // skew towards small bin values
        }
        centers.push(c);
    }
    let mut out = VectorSet::with_capacity(dim, n);
    let mut row = vec![0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..n_clusters)];
        for (d, x) in row.iter_mut().enumerate() {
            let v = c[d] + 25.0 * normal(&mut rng);
            *x = v.clamp(0.0, 255.0).round();
        }
        out.push(&row);
    }
    out
}

/// CNN-descriptor-like vectors (stands in for DEEP1B): dense Gaussian
/// mixture, unit L2-normalised, the form produced by the GoogLeNet features
/// DEEP1B was extracted from.
pub fn deep_like(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdeec);
    let n_clusters = 32.min(n.max(1));
    let mut centers = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        let mut c = vec![0f32; dim];
        fill_normal(&mut rng, &mut c, 0.0, 1.0);
        centers.push(c);
    }
    let mut out = VectorSet::with_capacity(dim, n);
    let mut row = vec![0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..n_clusters)];
        for (d, x) in row.iter_mut().enumerate() {
            *x = c[d] + 0.35 * normal(&mut rng);
        }
        out.push(&row);
    }
    out.normalize_l2();
    out
}

/// GIST-descriptor-like vectors (stands in for ANN_GIST1M): very high
/// dimensional, values in `[0, 1]`, strong inter-dimension correlation
/// (neighbouring GIST cells are correlated). Modelled as a smoothed Gaussian
/// field around cluster centres, clipped to the unit interval.
pub fn gist_like(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x915);
    let n_clusters = 16.min(n.max(1));
    let mut centers = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        let mut c = vec![0f32; dim];
        // random walk -> correlated neighbouring dimensions
        let mut level: f32 = rng.gen_range(0.2..0.8);
        for x in c.iter_mut() {
            level = (level + 0.08 * normal(&mut rng)).clamp(0.05, 0.95);
            *x = level;
        }
        centers.push(c);
    }
    let mut out = VectorSet::with_capacity(dim, n);
    let mut row = vec![0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..n_clusters)];
        let mut drift = 0f32;
        for (d, x) in row.iter_mut().enumerate() {
            drift = 0.7 * drift + 0.03 * normal(&mut rng);
            *x = (c[d] + drift + 0.02 * normal(&mut rng)).clamp(0.0, 1.0);
        }
        out.push(&row);
    }
    out
}

/// Draws `n` query vectors near rows of `data`: each query is a perturbed
/// copy of a random data row. `noise` is the perturbation std relative to
/// the per-dimension data spread. This matches how the TEXMEX query sets
/// relate to their base sets (held-out descriptors from the same source).
pub fn queries_near(data: &VectorSet, n: usize, noise: f32, seed: u64) -> VectorSet {
    assert!(
        !data.is_empty(),
        "cannot draw queries from an empty dataset"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9d5);
    let dim = data.dim();
    let (lo, hi) = data.bounds().expect("non-empty");
    let mut out = VectorSet::with_capacity(dim, n);
    let mut row = vec![0f32; dim];
    for _ in 0..n {
        let base = data.get(rng.gen_range(0..data.len()));
        for (d, x) in row.iter_mut().enumerate() {
            let spread = (hi[d] - lo[d]).max(1e-6);
            *x = base[d] + noise * spread * normal(&mut rng);
        }
        out.push(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_like_in_byte_range_and_integral() {
        let v = sift_like(500, 32, 1);
        assert_eq!(v.len(), 500);
        assert_eq!(v.dim(), 32);
        for row in v.iter() {
            for &x in row {
                assert!((0.0..=255.0).contains(&x));
                assert_eq!(x, x.round(), "sift values are integral bytes");
            }
        }
    }

    #[test]
    fn deep_like_is_unit_norm() {
        let v = deep_like(200, 24, 2);
        for row in v.iter() {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
        }
    }

    #[test]
    fn gist_like_in_unit_interval() {
        let v = gist_like(100, 96, 3);
        for row in v.iter() {
            for &x in row {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn gist_like_neighbouring_dims_correlate() {
        // correlation between adjacent dimensions should be clearly positive
        let v = gist_like(2000, 64, 4);
        let mut num = 0f64;
        let mut den_a = 0f64;
        let mut den_b = 0f64;
        let (mut ma, mut mb) = (0f64, 0f64);
        let mut cnt = 0f64;
        for row in v.iter() {
            for d in 0..63 {
                ma += row[d] as f64;
                mb += row[d + 1] as f64;
                cnt += 1.0;
            }
        }
        ma /= cnt;
        mb /= cnt;
        for row in v.iter() {
            for d in 0..63 {
                let a = row[d] as f64 - ma;
                let b = row[d + 1] as f64 - mb;
                num += a * b;
                den_a += a * a;
                den_b += b * b;
            }
        }
        let corr = num / (den_a.sqrt() * den_b.sqrt());
        assert!(corr > 0.5, "adjacent-dim correlation too low: {corr}");
    }

    #[test]
    fn queries_near_have_close_neighbours() {
        use crate::metric::Distance;
        let data = sift_like(300, 16, 9);
        let q = queries_near(&data, 20, 0.01, 10);
        assert_eq!(q.len(), 20);
        // each query should have at least one data point much closer than
        // the typical inter-point distance
        let typical = Distance::L2.eval(data.get(0), data.get(1));
        for qi in q.iter() {
            let best = data
                .iter()
                .map(|p| Distance::L2.eval(qi, p))
                .fold(f32::INFINITY, f32::min);
            assert!(best < typical, "query not near data: {best} vs {typical}");
        }
    }

    #[test]
    fn clustered_structure_present() {
        // points should be closer to some others than a uniform cloud would be
        use crate::metric::Distance;
        let v = deep_like(400, 32, 5);
        let mut nn = 0f64;
        for i in 0..50 {
            let best = (0..400)
                .filter(|&j| j != i)
                .map(|j| Distance::L2.eval(v.get(i), v.get(j)))
                .fold(f32::INFINITY, f32::min);
            nn += best as f64;
        }
        // unit-norm vectors: random pairs are ~sqrt(2) apart; clustered NN far less
        assert!(
            nn / 50.0 < 1.0,
            "no cluster structure: mean nn {}",
            nn / 50.0
        );
    }

    #[test]
    #[should_panic]
    fn queries_from_empty_panics() {
        let _ = queries_near(&VectorSet::new(4), 1, 0.1, 0);
    }
}
