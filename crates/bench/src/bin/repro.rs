//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [experiment]
//!   table1             datasets (paper vs generated stand-ins)
//!   fig3a              strong scaling, SYN_1M / SYN_10M
//!   fig3b              strong scaling, ANN_SIFT1B / DEEP1B stand-ins
//!   table2             construction times
//!   fig4               replication-factor load balancing (both panels)
//!   table3             ours vs the distributed KD-tree baseline
//!   fig5               search-time breakdown
//!   fig6               recall vs query time for M ∈ {8,16,32,64}
//!   ablation-owner     master-worker vs multiple-owner
//!   ablation-local     HNSW vs exact VP-tree vs brute-force local indexes
//!   baseline-pivot     VP-tree vs flat-pivot partitioning (ref [16])
//!   ablation-compression  SQ8 recall ceiling vs uncompressed (Section V-F)
//!   ablation-onesided  one-sided vs two-sided result aggregation
//!   all                everything above, in order
//! ```
//!
//! Scale with `FASTANN_SCALE=full` for 8× points / 4× cores.

use fastann_bench::{experiments as exp, Scale};

fn main() {
    let scale = Scale::from_env();
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let t0 = std::time::Instant::now();
    let all = arg == "all";
    let mut ran = false;

    if all || arg == "table1" {
        ran = true;
        println!("# Table I — datasets\n");
        println!("{}", exp::table1(scale));
    }
    if all || arg == "fig3a" {
        ran = true;
        let series = exp::fig3a(scale);
        println!(
            "{}",
            exp::render_scaling("Figure 3(a) — strong scaling, SYN datasets", &series)
        );
    }
    if all || arg == "fig3b" {
        ran = true;
        let series = exp::fig3b(scale);
        println!(
            "{}",
            exp::render_scaling(
                "Figure 3(b) — strong scaling, billion-style datasets",
                &series
            )
        );
    }
    if all || arg == "table2" {
        ran = true;
        println!("# Table II — construction times (ANN_SIFT1B stand-in)\n");
        println!("{}", exp::render_table2(&exp::table2(scale)));
    }
    if all || arg == "fig4" || arg == "fig4a" || arg == "fig4b" {
        ran = true;
        println!("# Figure 4 — load balancing by replication (skewed queries)\n");
        let (rows, optimal) = exp::fig4(scale);
        println!("{}", exp::render_fig4(&rows, optimal));
    }
    if all || arg == "table3" {
        ran = true;
        println!("# Table III — total search times vs KD-tree\n");
        println!("{}", exp::render_table3(&exp::table3(scale)));
    }
    if all || arg == "fig5" {
        ran = true;
        println!("# Figure 5 — search time breakdown (ANN_SIFT1B stand-in)\n");
        println!("{}", exp::render_fig5(&exp::fig5(scale)));
    }
    if all || arg == "fig6" {
        ran = true;
        println!("# Figure 6 — recall vs query time, M sweep\n");
        println!("{}", exp::render_fig6(&exp::fig6(scale)));
    }
    if all || arg == "ablation-owner" {
        ran = true;
        println!("# Ablation — master-worker vs multiple-owner (Section IV)\n");
        println!("{}", exp::render_owner(&exp::ablation_owner(scale)));
    }
    if all || arg == "ablation-compression" {
        ran = true;
        println!("# Ablation — compressed-index recall ceiling (Section V-F)\n");
        println!(
            "{}",
            exp::render_compression(&exp::ablation_compression(scale))
        );
    }
    if all || arg == "baseline-pivot" {
        ran = true;
        println!("# Baseline — VP-tree vs flat-pivot partitioning (ref [16])\n");
        println!("{}", exp::render_pivot(&exp::baseline_pivot(scale)));
    }
    if all || arg == "ablation-local" {
        ran = true;
        println!("# Ablation — local index kind (Section VI extensibility)\n");
        println!("{}", exp::render_local(&exp::ablation_local(scale)));
    }
    if all || arg == "ablation-onesided" {
        ran = true;
        println!("# Ablation — one-sided vs two-sided aggregation (Section IV-C1)\n");
        println!("{}", exp::render_onesided(&exp::ablation_onesided(scale)));
    }

    if arg == "debug" {
        ran = true;
        use fastann_bench::datasets;
        use fastann_core::{DistIndex, SearchRequest};
        let w = datasets::sift(scale);
        for cores in [16usize, 128] {
            let index = DistIndex::build(&w.data, fastann_bench::experiments::debug_cfg(cores));
            let r = SearchRequest::new(&index, &w.queries)
                .opts(fastann_bench::experiments::debug_opts())
                .run();
            println!(
                "cores={cores} total={:.1}us route={:.1}us comm_cpu={:.1}us wait={:.1}us fanout={:.2} \
                 ndist={} busy_max={:.1}us busy_sum={:.1}us",
                r.total_ns / 1e3,
                r.master_route_ns / 1e3,
                r.master_comm_cpu_ns / 1e3,
                r.master_wait_ns / 1e3,
                r.mean_fanout,
                r.total_ndist,
                r.node_busy_ns.iter().cloned().fold(0.0, f64::max) / 1e3,
                r.node_busy_ns.iter().sum::<f64>() / 1e3,
            );
        }
    }

    if !ran {
        eprintln!("unknown experiment '{arg}'; see `repro --help` header in the source");
        std::process::exit(2);
    }
    eprintln!(
        "\n[repro: {arg} done in {:.1}s wall]",
        t0.elapsed().as_secs_f64()
    );
}
