//! The order-invariant metrics registry.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::snapshot::{MetricEntry, MetricsSnapshot, ValueSnapshot};
use crate::stage::Stage;

/// Fixed-point scale for histogram sums: each observation contributes
/// `round(value * 1024)` to a `u64` accumulator, so accumulation is pure
/// integer addition and immune to floating-point ordering.
pub(crate) const SUM_SCALE: f64 = 1024.0;

/// Bucket-bound presets. Bounds are `&'static` so every observation of a
/// series provably uses the same layout; the final `+Inf` bucket is
/// implicit.
pub mod buckets {
    /// Small cardinalities: fan-outs, batch sizes, hop counts, retries.
    pub const COUNT: &[f64] = &[
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    ];
    /// Per-query work units: distance evaluations, heap pushes.
    pub const WORK: &[f64] = &[
        16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    ];
    /// Virtual-time durations in nanoseconds, decade-spaced from 1 µs
    /// to 1 s.
    pub const NS: &[f64] = &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];
}

/// One series' accumulated state.
enum Slot {
    /// Monotone `u64` counter.
    Counter(u64),
    /// Max-gauge: the largest value observed.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Hist),
}

struct Hist {
    bounds: &'static [f64],
    /// One count per bound, plus the trailing `+Inf` bucket
    /// (non-cumulative; the exporters cumulate).
    counts: Vec<u64>,
    count: u64,
    /// Sum in fixed point (see [`SUM_SCALE`]).
    sum_fp: u64,
}

impl Hist {
    fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum_fp: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_fp += (v.max(0.0) * SUM_SCALE).round() as u64;
    }
}

/// Series key: metric name plus sorted label pairs. Label *names* are
/// static (they are part of the schema); label *values* are data.
type Key = (&'static str, Vec<(&'static str, String)>);

fn key(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
    let mut l: Vec<(&'static str, String)> =
        labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
    l.sort_unstable();
    (name, l)
}

/// A shared, thread-safe metrics registry. Cloning is cheap (an `Arc`
/// bump) and every clone records into the same store, so the engine's
/// per-rank threads can all hold one handle. All mutations are
/// order-invariant folds — see the crate docs for the determinism
/// contract.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<BTreeMap<Key, Slot>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter series `name{labels}`.
    ///
    /// # Panics
    /// Panics if the series was already registered as a different type.
    pub fn inc(&self, name: &'static str, labels: &[(&'static str, &str)], n: u64) {
        let mut g = self.inner.lock();
        let slot = g.entry(key(name, labels)).or_insert(Slot::Counter(0));
        assert!(
            matches!(slot, Slot::Counter(_)),
            "metric {name} is not a counter"
        );
        if let Slot::Counter(c) = slot {
            *c += n;
        }
    }

    /// Folds `v` into the max-gauge series `name{labels}` (the gauge
    /// reports the largest value observed, which is the only gauge
    /// semantic that merges order-invariantly).
    ///
    /// # Panics
    /// Panics if the series was already registered as a different type,
    /// or if `v` is not finite (NaN would poison the max fold, and an
    /// infinite gauge cannot round-trip through the JSON exporter).
    pub fn gauge_max(&self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        assert!(v.is_finite(), "metric {name}: gauge value must be finite");
        let mut g = self.inner.lock();
        let slot = g
            .entry(key(name, labels))
            .or_insert(Slot::Gauge(f64::NEG_INFINITY));
        assert!(
            matches!(slot, Slot::Gauge(_)),
            "metric {name} is not a gauge"
        );
        if let Slot::Gauge(cur) = slot {
            *cur = cur.max(v);
        }
    }

    /// Records `v` into the histogram series `name{labels}` with the
    /// given bucket `bounds` (use a [`buckets`] preset; bounds must be
    /// ascending and identical for every observation of a series).
    ///
    /// # Panics
    /// Panics if the series was already registered as a different type
    /// or with different bounds, or if `v` is NaN.
    pub fn observe(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        v: f64,
        bounds: &'static [f64],
    ) {
        assert!(!v.is_nan(), "metric {name}: observation must not be NaN");
        let mut g = self.inner.lock();
        let slot = g
            .entry(key(name, labels))
            .or_insert_with(|| Slot::Histogram(Hist::new(bounds)));
        assert!(
            matches!(slot, Slot::Histogram(_)),
            "metric {name} is not a histogram"
        );
        if let Slot::Histogram(h) = slot {
            assert!(
                h.bounds == bounds,
                "metric {name}: bucket bounds must match the first registration"
            );
            h.observe(v);
        }
    }

    /// Records a query-path span: folds the duration `end_ns - start_ns`
    /// into the `fastann_span_ns{stage=...}` histogram. This is the
    /// metrics half of the unified span layer; callers that also hold a
    /// `fastann_mpisim::Trace` record the same [`Stage::label`] there.
    pub fn span(&self, stage: Stage, start_ns: f64, end_ns: f64) {
        self.observe(
            "fastann_span_ns",
            &[("stage", stage.label())],
            (end_ns - start_ns).max(0.0),
            buckets::NS,
        );
    }

    /// Folds every series of `other` into `self`. Merging is
    /// order-invariant: any permutation of shards produces the same
    /// registry state.
    ///
    /// # Panics
    /// Panics if a series exists in both registries with conflicting
    /// types or bucket bounds.
    pub fn merge_from(&self, other: &Metrics) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let theirs = other.inner.lock();
        let mut ours = self.inner.lock();
        for ((name, labels), slot) in theirs.iter() {
            let entry = ours.entry((name, labels.clone()));
            match slot {
                Slot::Counter(n) => {
                    let dst = entry.or_insert(Slot::Counter(0));
                    assert!(
                        matches!(dst, Slot::Counter(_)),
                        "metric {name}: merge type mismatch"
                    );
                    if let Slot::Counter(c) = dst {
                        *c += n;
                    }
                }
                Slot::Gauge(v) => {
                    let dst = entry.or_insert(Slot::Gauge(f64::NEG_INFINITY));
                    assert!(
                        matches!(dst, Slot::Gauge(_)),
                        "metric {name}: merge type mismatch"
                    );
                    if let Slot::Gauge(cur) = dst {
                        *cur = cur.max(*v);
                    }
                }
                Slot::Histogram(h) => {
                    let dst = entry.or_insert_with(|| Slot::Histogram(Hist::new(h.bounds)));
                    assert!(
                        matches!(dst, Slot::Histogram(_)),
                        "metric {name}: merge type mismatch"
                    );
                    if let Slot::Histogram(d) = dst {
                        assert!(d.bounds == h.bounds, "metric {name}: merge bounds mismatch");
                        for (a, b) in d.counts.iter_mut().zip(&h.counts) {
                            *a += b;
                        }
                        d.count += h.count;
                        d.sum_fp += h.sum_fp;
                    }
                }
            }
        }
    }

    /// An immutable, sorted snapshot of every series. Two registries
    /// that accumulated the same observations — in any order, from any
    /// number of threads — snapshot identically (`==` compares exact
    /// bits).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock();
        let entries = g
            .iter()
            .map(|((name, labels), slot)| MetricEntry {
                name: (*name).to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
                value: match slot {
                    Slot::Counter(n) => ValueSnapshot::Counter(*n),
                    Slot::Gauge(v) => ValueSnapshot::Gauge(*v),
                    Slot::Histogram(h) => ValueSnapshot::Histogram {
                        bounds: h.bounds.to_vec(),
                        counts: h.counts.clone(),
                        count: h.count,
                        sum: h.sum_fp as f64 / SUM_SCALE,
                    },
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.inc("fastann_test_total", &[], 2);
        m.inc("fastann_test_total", &[], 3);
        let s = m.snapshot();
        assert_eq!(s.counter("fastann_test_total", &[]), Some(5));
    }

    #[test]
    fn labels_split_series_and_sort_canonically() {
        let m = Metrics::new();
        m.inc("c", &[("b", "2"), ("a", "1")], 1);
        m.inc("c", &[("a", "1"), ("b", "2")], 1);
        m.inc("c", &[("a", "9")], 7);
        let s = m.snapshot();
        assert_eq!(s.counter("c", &[("a", "1"), ("b", "2")]), Some(2));
        assert_eq!(s.counter("c", &[("a", "9")]), Some(7));
    }

    #[test]
    fn gauge_keeps_the_max() {
        let m = Metrics::new();
        m.gauge_max("g", &[], 3.0);
        m.gauge_max("g", &[], 7.5);
        m.gauge_max("g", &[], 1.0);
        let s = m.snapshot();
        let v = s.get("g", &[]).expect("gauge exists");
        assert!(matches!(v, ValueSnapshot::Gauge(x) if *x == 7.5));
    }

    #[test]
    fn histogram_buckets_and_fixed_point_sum() {
        let m = Metrics::new();
        for v in [0.5, 1.0, 3.0, 1e9] {
            m.observe("h", &[], v, buckets::COUNT);
        }
        let s = m.snapshot();
        let (count, sum) = s.histogram("h", &[]).expect("histogram exists");
        assert_eq!(count, 4);
        assert_eq!(sum, 0.5f64 + 1.0 + 3.0 + 1e9, "exact in fixed point");
        let v = s.get("h", &[]).expect("histogram exists");
        if let ValueSnapshot::Histogram { counts, .. } = v {
            assert_eq!(counts[0], 2, "0.5 and 1.0 land in le=1");
            assert_eq!(counts[2], 1, "3.0 lands in le=4");
            assert_eq!(*counts.last().expect("has +Inf bucket"), 1);
        }
    }

    #[test]
    fn span_folds_into_the_stage_histogram() {
        let m = Metrics::new();
        m.span(Stage::Route, 100.0, 2_600.0);
        let s = m.snapshot();
        let labels = [("stage", "route+dispatch")];
        let (count, sum) = s
            .histogram("fastann_span_ns", &labels)
            .expect("span histogram exists");
        assert_eq!(count, 1);
        assert_eq!(sum, 2_500.0);
    }

    #[test]
    fn merge_is_a_disjoint_and_overlapping_union() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.inc("c", &[], 1);
        b.inc("c", &[], 2);
        b.gauge_max("g", &[], 4.0);
        a.observe("h", &[], 2.0, buckets::COUNT);
        b.observe("h", &[], 5.0, buckets::COUNT);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.counter("c", &[]), Some(3));
        assert_eq!(s.histogram("h", &[]), Some((2, 7.0)));
        assert!(matches!(
            s.get("g", &[]),
            Some(ValueSnapshot::Gauge(x)) if *x == 4.0
        ));
    }

    #[test]
    fn merge_with_self_is_a_noop() {
        let m = Metrics::new();
        m.inc("c", &[], 3);
        let m2 = m.clone();
        m.merge_from(&m2);
        assert_eq!(m.snapshot().counter("c", &[]), Some(3));
    }

    #[test]
    #[should_panic]
    fn type_confusion_is_rejected() {
        let m = Metrics::new();
        m.inc("x", &[], 1);
        m.gauge_max("x", &[], 1.0);
    }
}
