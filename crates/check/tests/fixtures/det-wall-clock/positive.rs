use std::time::Instant;

fn measure() -> u64 {
    let start = Instant::now();
    work();
    start.elapsed().as_nanos() as u64
}

fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
