/root/repo/target/debug/examples/texmex_pipeline-cf62c10e648f0d10.d: examples/texmex_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libtexmex_pipeline-cf62c10e648f0d10.rmeta: examples/texmex_pipeline.rs Cargo.toml

examples/texmex_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
