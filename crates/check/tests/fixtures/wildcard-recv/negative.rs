fn drain(world: &World, src: usize) -> Vec<u8> {
    // recv(None, None) would be the PR 1 bug class; this one is exact
    let (_tag, bytes) = world.recv(Some(src), Some(TAG_GOOD));
    let probe = world.try_recv(Some(src), Some(TAG_GOOD));
    let _ = probe;
    bytes
}
