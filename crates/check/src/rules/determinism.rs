//! The `determinism` rule family: static rejection of nondeterminism
//! *sources* in the crates under the bit-identity contract.
//!
//! Every number the workspace reports must be bit-identical across
//! `FASTANN_THREADS`; the dynamic gates (golden diffs, threads=1/4
//! reruns) catch drift after the fact, these rules reject the cause at
//! lint time. Four classes:
//!
//! * `det-map-iter` — iteration over a `HashMap`/`HashSet` (its order
//!   is seeded per-process). Lookups, inserts and `len()` are fine; any
//!   order-exposing traversal (`iter`, `keys`, `values`, `drain`,
//!   `retain`, `for … in map`) needs a `det:sort` / `det:fold`
//!   annotation asserting the consumed result is order-insensitive
//!   (sorted afterwards, or folded commutatively into disjoint slots),
//!   or a line-granular allowlist entry.
//! * `det-wall-clock` — `Instant::now` / `SystemTime::now`. All
//!   reported timing is *virtual*; wall-clock belongs in `crates/bench`.
//! * `det-thread-id` — `thread::current()` / `available_parallelism`.
//!   Thread identity must never feed a reported value; diagnostic uses
//!   are allowlisted per line.
//! * `det-float-accum` — accumulation inside a `par_iter`-family
//!   statement (`+=` on a captured value, or a par-side `sum` / `fold` /
//!   `reduce` / `product`). Float addition does not commute; the
//!   sanctioned idiom is the PR 3 chunked order-preserving reduction:
//!   `par_iter().map(…).collect()` then a sequential fold.
//!
//! Scope detection is token-level type tracking, not inference: a name
//! counts as a hash collection when its declaration (`let`, field, or
//! parameter) mentions `HashMap`/`HashSet`. Indirections (e.g. a map
//! behind `Mutex::lock()`) are out of reach of the lint and remain the
//! dynamic gates' job.

use std::collections::BTreeSet;

use crate::engine::FileCtx;
use crate::lint::{
    Violation, RULE_DET_FLOAT_ACCUM, RULE_DET_MAP_ITER, RULE_DET_THREAD_ID, RULE_DET_WALL_CLOCK,
};

/// Crates under the determinism contract (all reported numbers must be
/// bit-identical across thread counts). `bench` measures the real host
/// and `check` is the tooling itself; both stay outside.
pub const CONTRACT_CRATES: [&str; 8] = [
    "crates/core/",
    "crates/hnsw/",
    "crates/vptree/",
    "crates/kdtree/",
    "crates/data/",
    "crates/obs/",
    "crates/serve/",
    "crates/mpisim/",
];

/// Order-exposing methods on hash collections.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Heads of the `par_iter` family; a statement containing one is a
/// parallel-reduction site.
const PAR_HEADS: [&str; 5] = [
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_bridge",
];

/// Par-side adapters that reduce in traversal order.
const REDUCERS: [&str; 4] = ["sum", "product", "fold", "reduce"];

/// Compound assignments that accumulate.
const ACCUM_OPS: [&str; 4] = ["+=", "-=", "*=", "/="];

/// Runs the family over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !CONTRACT_CRATES.iter().any(|p| ctx.rel.starts_with(p)) {
        return;
    }
    let hash_names = collect_hash_names(ctx);
    let mut flagged_lines: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    let mut par_end = 0usize; // end of the current par statement span
    for ci in 0..ctx.n() {
        if ctx.in_test(ci) {
            continue;
        }
        // --- det-map-iter -------------------------------------------------
        // name.iter() / name.keys() / … on a known hash collection
        if let Some(name) = ctx.ident(ci) {
            if hash_names.contains(name)
                && ctx.is_punct(ci + 1, ".")
                && ctx.is_punct(ci + 3, "(")
                && ITER_METHODS.iter().any(|m| ctx.is_ident(ci + 2, m))
                && !ctx.det_annotated(ctx.line(ci))
                && flagged_lines.insert((ctx.line(ci), RULE_DET_MAP_ITER))
            {
                ctx.flag(out, ci, RULE_DET_MAP_ITER);
            }
        }
        // for … in [&][mut] [self.]name { — direct traversal
        if ctx.is_ident(ci, "in") {
            let mut cj = ci + 1;
            while ctx.is_punct(cj, "&") || ctx.is_punct(cj, "&&") || ctx.is_ident(cj, "mut") {
                cj += 1;
            }
            if ctx.is_ident(cj, "self") && ctx.is_punct(cj + 1, ".") {
                cj += 2;
            }
            if let Some(name) = ctx.ident(cj) {
                if hash_names.contains(name)
                    && ctx.is_punct(cj + 1, "{")
                    && !ctx.det_annotated(ctx.line(cj))
                    && flagged_lines.insert((ctx.line(cj), RULE_DET_MAP_ITER))
                {
                    ctx.flag(out, cj, RULE_DET_MAP_ITER);
                }
            }
        }
        // --- det-wall-clock -----------------------------------------------
        if (ctx.is_ident(ci, "Instant") || ctx.is_ident(ci, "SystemTime"))
            && ctx.is_punct(ci + 1, "::")
            && ctx.is_ident(ci + 2, "now")
        {
            ctx.flag(out, ci, RULE_DET_WALL_CLOCK);
        }
        // --- det-thread-id ------------------------------------------------
        if ctx.is_ident(ci, "thread")
            && ctx.is_punct(ci + 1, "::")
            && ctx.is_ident(ci + 2, "current")
            && ctx.is_punct(ci + 3, "(")
        {
            ctx.flag(out, ci, RULE_DET_THREAD_ID);
        }
        if ctx.is_ident(ci, "available_parallelism") {
            ctx.flag(out, ci, RULE_DET_THREAD_ID);
        }
        // --- det-float-accum ----------------------------------------------
        if ci >= par_end && PAR_HEADS.iter().any(|h| ctx.is_ident(ci, h)) {
            par_end = par_statement_end(ctx, ci);
            for cj in ci..par_end {
                let accum_op = ctx
                    .t(cj)
                    .is_some_and(|t| ACCUM_OPS.contains(&t.text.as_str()));
                let par_reduce = ctx.is_punct(cj, ".")
                    && REDUCERS.iter().any(|r| ctx.is_ident(cj + 1, r))
                    && (ctx.is_punct(cj + 2, "(") || ctx.is_punct(cj + 2, "::"));
                if (accum_op || par_reduce)
                    && !ctx.det_annotated(ctx.line(cj))
                    && flagged_lines.insert((ctx.line(cj), RULE_DET_FLOAT_ACCUM))
                {
                    ctx.flag(out, cj, RULE_DET_FLOAT_ACCUM);
                }
            }
        }
    }
}

/// Names declared with a `HashMap`/`HashSet` type in this file: `let`
/// bindings (annotated or initialized from `Hash{Map,Set}::…`), struct
/// fields, and typed parameters.
fn collect_hash_names(ctx: &FileCtx<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ci in 0..ctx.n() {
        // NAME : <type span mentioning HashMap/HashSet>
        if let Some(name) = ctx.ident(ci) {
            if ctx.is_punct(ci + 1, ":") && type_span_mentions_hash(ctx, ci + 2) {
                names.insert(name.to_string());
                continue;
            }
        }
        // let [mut] NAME = … Hash{Map,Set} :: …
        if ctx.is_ident(ci, "let") {
            let mut cj = ci + 1;
            if ctx.is_ident(cj, "mut") {
                cj += 1;
            }
            if let Some(name) = ctx.ident(cj) {
                if ctx.is_punct(cj + 1, "=") && init_span_mentions_hash(ctx, cj + 2) {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

/// Scans a type span starting at `ci` (after the `:`), stopping at a
/// top-level `, ; = ) { }`; `true` when it mentions a hash type.
fn type_span_mentions_hash(ctx: &FileCtx<'_>, ci: usize) -> bool {
    let mut depth = 0i64;
    for cj in ci..ctx.n().min(ci + 64) {
        match ctx.t(cj).map(|t| t.text.as_str()) {
            Some("<") | Some("(") | Some("[") => depth += 1,
            Some(">") | Some(")") | Some("]") => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            Some(",") | Some(";") | Some("=") | Some("{") | Some("}") if depth == 0 => {
                return false
            }
            _ => {}
        }
        if ctx.is_ident(cj, "HashMap") || ctx.is_ident(cj, "HashSet") {
            return true;
        }
    }
    false
}

/// Scans an initializer span starting at `ci` (after the `=`) up to the
/// statement-ending `;`; `true` when it constructs a hash type.
fn init_span_mentions_hash(ctx: &FileCtx<'_>, ci: usize) -> bool {
    let mut depth = 0i64;
    for cj in ci..ctx.n() {
        match ctx.t(cj).map(|t| t.text.as_str()) {
            Some("(") | Some("[") | Some("{") => depth += 1,
            Some(")") | Some("]") | Some("}") => {
                if depth < 1 {
                    return false;
                }
                depth -= 1;
            }
            Some(";") if depth == 0 => return false,
            _ => {}
        }
        if (ctx.is_ident(cj, "HashMap") || ctx.is_ident(cj, "HashSet"))
            && ctx.is_punct(cj + 1, "::")
        {
            return true;
        }
    }
    false
}

/// End (exclusive code-index) of the statement containing the par head
/// at `ci`: the top-level `;`, or the point where the enclosing group
/// closes.
fn par_statement_end(ctx: &FileCtx<'_>, ci: usize) -> usize {
    let mut depth = 0i64;
    for cj in ci..ctx.n() {
        match ctx.t(cj).map(|t| t.text.as_str()) {
            Some("(") | Some("[") | Some("{") => depth += 1,
            Some(")") | Some("]") | Some("}") => {
                depth -= 1;
                if depth < 0 {
                    return cj;
                }
            }
            Some(";") if depth == 0 => return cj,
            _ => {}
        }
    }
    ctx.n()
}
