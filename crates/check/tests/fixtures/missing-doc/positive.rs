pub struct Plan {
    pub shards: usize,
}

pub fn execute(p: &Plan) -> usize {
    p.shards
}
