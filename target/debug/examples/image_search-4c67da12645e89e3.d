/root/repo/target/debug/examples/image_search-4c67da12645e89e3.d: examples/image_search.rs

/root/repo/target/debug/examples/image_search-4c67da12645e89e3: examples/image_search.rs

examples/image_search.rs:
