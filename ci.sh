#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the workspace root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "CI green."
